"""Data parallelism + weight-update sharding, executed for real.

Trains a small classifier three ways on the functional virtual mesh —
single device, 8-replica data parallelism with the 2-D hierarchical
gradient all-reduce, and 8-replica weight-update sharding (Section 3.2)
with the LAMB optimizer — and shows that all three produce *identical*
weights, the invariant the paper's systems optimizations must preserve.
Also demonstrates bfloat16 gradient summation (Section 3.3) and the
distributed eval metric of Section 3.4.

Run:
    python examples/train_data_parallel.py
"""

import numpy as np

from repro.core.data_parallel import DataParallelTrainer, SingleDeviceTrainer
from repro.core.weight_update_sharding import WeightUpdateShardedTrainer
from repro.metrics.accuracy import distributed_top1_accuracy, pad_eval_dataset
from repro.models.mlp import MLP, synthetic_classification
from repro.optim import LAMB

STEPS = 30
BATCH = 256


def main() -> None:
    rng = np.random.default_rng(0)
    model = MLP([16, 32, 16, 4])
    # One draw of class prototypes, split into train and held-out eval.
    all_x, all_y = synthetic_classification(rng, BATCH + 100, 16, 4, noise=0.1)
    x, y = all_x[:BATCH], all_y[:BATCH]
    eval_x, eval_y = all_x[BATCH:], all_y[BATCH:]

    trainers = {
        "single device": SingleDeviceTrainer(model, LAMB(0.02)),
        "8-replica DP (2-D all-reduce)": DataParallelTrainer(
            model, LAMB(0.02), dp_x=4, dp_y=2
        ),
        "8-replica DP + weight-update sharding": WeightUpdateShardedTrainer(
            model, LAMB(0.02), num_replicas=8
        ),
        "8-replica DP, bf16 gradients": DataParallelTrainer(
            model, LAMB(0.02), dp_x=8, grad_dtype_policy="bf16"
        ),
    }
    results = {}
    for label, trainer in trainers.items():
        trainer.init(np.random.default_rng(7))
        for _ in range(STEPS):
            loss = trainer.step(x, y)
        params = (
            trainer.params if trainer.params is not None else None
        )
        results[label] = (loss, params)
        print(f"{label:42s} final loss {loss:.6f}")

    ref = results["single device"][1]
    print("\nmax |param difference| vs single device:")
    for label, (_, params) in results.items():
        if label == "single device":
            continue
        diff = max(float(np.max(np.abs(params[k] - ref[k]))) for k in ref)
        print(f"  {label:42s} {diff:.3e}")

    # Distributed evaluation (Section 3.4): pad the eval set to the device
    # batch, shard it, and all-reduce (correct, valid) counts.
    padded_x, padded_y, mask = pad_eval_dataset(eval_x, eval_y, 128)
    params = results["8-replica DP (2-D all-reduce)"][1]
    preds = model.predict(params, padded_x)
    shards = 8
    acc = distributed_top1_accuracy(
        np.split(preds, shards), np.split(padded_y, shards), np.split(mask, shards)
    )
    print(f"\ndistributed eval top-1 accuracy (padding excluded): {acc:.3f}")


if __name__ == "__main__":
    main()

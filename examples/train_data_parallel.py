"""Data parallelism + weight-update sharding, executed for real.

Trains a small classifier several ways on the functional virtual mesh —
single device, 8-replica data parallelism with the 2-D hierarchical
gradient all-reduce, and 8-replica weight-update sharding (Section 3.2)
with the LAMB optimizer — and shows that all of them produce *identical*
weights, the invariant the paper's systems optimizations must preserve.
Also demonstrates bfloat16 gradient summation (Section 3.3), the
backprop-overlapped bucketed collectives of the overlap engine (which
model concurrency without touching the math), and the distributed eval
metric of Section 3.4.

Every trainer is built through the unified ``make_trainer`` factory from
a declarative ``TrainerConfig``.

Run:
    python examples/train_data_parallel.py
"""

import numpy as np

from repro.core import TrainerConfig, make_trainer
from repro.metrics.accuracy import distributed_top1_accuracy, pad_eval_dataset
from repro.models.mlp import MLP, synthetic_classification
from repro.optim import LAMB

STEPS = 30
BATCH = 256


def main() -> None:
    rng = np.random.default_rng(0)
    model = MLP([16, 32, 16, 4])
    # One draw of class prototypes, split into train and held-out eval.
    all_x, all_y = synthetic_classification(rng, BATCH + 100, 16, 4, noise=0.1)
    x, y = all_x[:BATCH], all_y[:BATCH]
    eval_x, eval_y = all_x[BATCH:], all_y[BATCH:]

    base = TrainerConfig(model=model, optimizer=LAMB(0.02), seed=7)
    configs = {
        "single device": base.with_(strategy="single"),
        "8-replica DP (2-D all-reduce)": base.with_(
            strategy="data_parallel", mesh_shape=(4, 2)
        ),
        "8-replica DP + weight-update sharding": base.with_(
            strategy="wus", mesh_shape=(8, 1)
        ),
        "8-replica DP, bf16 gradients": base.with_(
            strategy="data_parallel", mesh_shape=(8, 1),
            grad_dtype_policy="bf16",
        ),
        "8-replica DP, 4-bucket overlap": base.with_(
            strategy="data_parallel", mesh_shape=(8, 1),
            num_buckets=4, overlap=True,
        ),
    }
    results = {}
    overlap_trainer = None
    for label, config in configs.items():
        trainer = make_trainer(config)  # seed=7 -> returned initialized
        for _ in range(STEPS):
            loss = trainer.step(x, y)
        if config.overlap:
            overlap_trainer = trainer
        params = (
            trainer.params if trainer.params is not None else None
        )
        results[label] = (loss, params)
        print(f"{label:42s} final loss {loss:.6f}")

    ref = results["single device"][1]
    print("\nmax |param difference| vs single device:")
    for label, (_, params) in results.items():
        if label == "single device":
            continue
        diff = max(float(np.max(np.abs(params[k] - ref[k]))) for k in ref)
        print(f"  {label:42s} {diff:.3e}")

    # The overlap engine only models the timeline; its modeled schedule for
    # the last step is attached to the trainer.
    if overlap_trainer is not None and overlap_trainer.last_overlap is not None:
        ov = overlap_trainer.last_overlap
        print(
            f"\noverlap model (last step, {ov.num_buckets} buckets): "
            f"{ov.overlap_efficiency:.1%} of collective time hidden "
            f"behind backprop, exposed tail {ov.exposed_comm_seconds * 1e3:.3f} ms"
        )

    # Distributed evaluation (Section 3.4): pad the eval set to the device
    # batch, shard it, and all-reduce (correct, valid) counts.
    padded_x, padded_y, mask = pad_eval_dataset(eval_x, eval_y, 128)
    params = results["8-replica DP (2-D all-reduce)"][1]
    preds = model.predict(params, padded_x)
    shards = 8
    acc = distributed_top1_accuracy(
        np.split(preds, shards), np.split(padded_y, shards), np.split(mask, shards)
    )
    print(f"\ndistributed eval top-1 accuracy (padding excluded): {acc:.3f}")


if __name__ == "__main__":
    main()

"""Spatial partitioning with real halo exchange (Sections 3.1 / 4.4).

Runs an SSD-style convolution stack with its input image split along the
height dimension over 1-8 virtual cores.  The halo rows actually move
between shards before every layer — the communication XLA's SPMD
partitioner inserts — and the sharded result is checked against the
unsharded convolution.  Then the SPMD cost estimator reports the Figure 9
speedup curve the same partitioning achieves on the modeled TPU.

Run:
    python examples/spatial_partitioning.py
"""

import numpy as np

from repro.spmd.estimator import model_parallel_speedup
from repro.spmd.modelgraphs import spatial_seeds, ssd_graph
from repro.spmd.spatial_exec import conv2d_direct, spatial_conv_stack


def functional_demo() -> None:
    print("=== functional: conv stack with real halo exchange ===")
    rng = np.random.default_rng(0)
    x = rng.standard_normal((2, 32, 24, 3))
    weights = [
        rng.standard_normal((3, 3, 3, 8)) * 0.2,
        rng.standard_normal((3, 3, 8, 8)) * 0.2,
        rng.standard_normal((5, 5, 8, 4)) * 0.1,
    ]
    direct = x
    for i, w in enumerate(weights):
        direct = conv2d_direct(direct, w)
        if i + 1 < len(weights):
            direct = np.maximum(direct, 0.0)
    for k in (1, 2, 4, 8):
        out, halo_bytes = spatial_conv_stack(x, weights, k)
        err = float(np.max(np.abs(out - direct)))
        print(f"  {k} cores: max|sharded - direct| = {err:.2e}, "
              f"halo traffic {halo_bytes / 1e3:7.1f} KB")
    print()


def estimator_demo() -> None:
    print("=== modeled: SSD spatial-partitioning speedup (Figure 9) ===")
    speedups = model_parallel_speedup(ssd_graph, spatial_seeds, [1, 2, 4, 8])
    for cores, speedup in speedups.items():
        print(f"  {cores} cores: {speedup:.2f}x")
    print("(limited by halo exchange, tile imbalance, and the small spatial "
          "dims of late layers — Section 4.4)")


if __name__ == "__main__":
    functional_demo()
    estimator_demo()

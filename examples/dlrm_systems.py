"""DLRM systems work, end to end (Section 4.6).

Four of the paper's DLRM optimizations, executed functionally:

1. **embedding-table partitioning** — the Criteo-scale tables (~90 GiB)
   cannot fit one chip's 32 GiB HBM; the placement planner replicates the
   small tables and shards the large ones, and a sharded lookup fetches
   rows across virtual chips (counting the interconnect bytes);
2. **interaction masking** — replacing the redundant-feature gather with
   zero-masking plus an adjusted fully connected layer, bit-identical;
3. **multi-step eval accumulation** — simulated on the event simulator:
   one host round trip per eval pass instead of per step;
4. **the fast AUC metric** — covered in input_pipeline_study.py.

Run:
    python examples/dlrm_systems.py
"""

import numpy as np

from repro.core.loop import dlrm_eval_accumulation_ablation
from repro.models.embedding import (
    ShardedEmbedding,
    criteo_tables,
    expand_weights_for_mask,
    interaction_gather,
    interaction_masked,
    plan_embedding_placement,
)

HBM = 32 * 2**30


def placement_demo() -> None:
    print("=== embedding-table partitioning ===")
    tables = criteo_tables()
    total_gib = sum(t.bytes for t in tables) / 2**30
    print(f"26 Criteo-like tables, {total_gib:.1f} GiB total "
          f"(one TPU-v3 chip: 32 GiB HBM)")
    try:
        plan_embedding_placement(tables, 1, HBM)
    except MemoryError as exc:
        print(f"  1 chip : {exc}")
    plan = plan_embedding_placement(tables, 256, HBM)
    print(f"  256 chips: {len(plan.replicated)} tables replicated, "
          f"{len(plan.sharded)} sharded, "
          f"{plan.per_chip_bytes() / 2**30:.2f} GiB per chip\n")

    rng = np.random.default_rng(0)
    table = rng.standard_normal((100_000, 32)).astype(np.float32)
    sharded = ShardedEmbedding(table, num_devices=8)
    ids = rng.integers(0, 100_000, 4096)
    out = sharded.lookup(ids)
    assert np.allclose(out, table[ids])
    print(f"sharded lookup of 4096 ids over 8 chips: "
          f"{sharded.comm_bytes / 1e6:.2f} MB crossed the interconnect\n")


def masking_demo() -> None:
    print("=== interaction masking vs gather ===")
    rng = np.random.default_rng(1)
    features = rng.standard_normal((8, 27, 16))  # 26 categorical + 1 dense
    w = rng.standard_normal((27 * 26 // 2, 4))
    gathered = interaction_gather(features) @ w
    masked = interaction_masked(features) @ expand_weights_for_mask(w, 27)
    print(f"max |masked-path - gather-path| = "
          f"{float(np.max(np.abs(gathered - masked))):.2e} "
          f"(the FC simply ignores the zeroed entries)\n")


def eval_accumulation_demo() -> None:
    print("=== multi-step on-device eval accumulation ===")
    naive, optimized = dlrm_eval_accumulation_ablation()
    print(f"per-step host transfers: total {naive.total_seconds * 1e3:7.1f} ms, "
          f"eval overhead {naive.eval_overhead_fraction:5.1%}")
    print(f"accumulated on device : total {optimized.total_seconds * 1e3:7.1f} ms, "
          f"eval overhead {optimized.eval_overhead_fraction:5.1%}")


if __name__ == "__main__":
    placement_demo()
    masking_demo()
    eval_accumulation_demo()

"""Attention layer tests: gradients and head-sharded equivalence (§4.3)."""

import numpy as np
import pytest

from repro.models.attention import (
    AttentionParams,
    HeadShardedAttention,
    attention_backward,
    attention_forward,
)


@pytest.fixture
def params(rng):
    return AttentionParams.init(rng, hidden=12, num_heads=4, head_dim=3)


class TestForward:
    def test_output_shape(self, params, rng):
        x = rng.standard_normal((7, 12))
        out, _ = attention_forward(params, x)
        assert out.shape == (7, 12)

    def test_attention_rows_are_convex_combinations(self, params, rng):
        x = rng.standard_normal((5, 12))
        _, cache = attention_forward(params, x)
        probs = cache["probs"]
        assert np.allclose(probs.sum(axis=-1), 1.0)
        assert np.all(probs >= 0)

    def test_input_validation(self, params, rng):
        with pytest.raises(ValueError):
            attention_forward(params, rng.standard_normal((7, 5)))

    def test_params_validation(self, rng):
        with pytest.raises(ValueError):
            AttentionParams(
                wq=rng.standard_normal((8, 10)),
                wk=rng.standard_normal((8, 10)),
                wv=rng.standard_normal((8, 10)),
                wo=rng.standard_normal((10, 8)),
                num_heads=3,  # 10 % 3 != 0
            )


class TestBackward:
    def test_gradients_match_numerical(self, rng):
        params = AttentionParams.init(rng, hidden=6, num_heads=2, head_dim=3)
        x = rng.standard_normal((4, 6))
        target = rng.standard_normal((4, 6))

        def loss():
            out, _ = attention_forward(params, x)
            return 0.5 * float(np.sum((out - target) ** 2))

        out, cache = attention_forward(params, x)
        dout = out - target
        dx, grads = attention_backward(params, cache, dout)
        eps = 1e-6
        # Check a sample of weight entries and all of dx.
        for name in ("wq", "wk", "wv", "wo"):
            w = getattr(params, name)
            g = getattr(grads, name)
            flat = w.reshape(-1)
            for idx in range(0, flat.size, max(1, flat.size // 6)):
                old = flat[idx]
                flat[idx] = old + eps
                hi = loss()
                flat[idx] = old - eps
                lo = loss()
                flat[idx] = old
                assert g.reshape(-1)[idx] == pytest.approx(
                    (hi - lo) / (2 * eps), abs=1e-4
                ), name
        flat = x.reshape(-1)
        for idx in range(flat.size):
            old = flat[idx]
            flat[idx] = old + eps
            hi = loss()
            flat[idx] = old - eps
            lo = loss()
            flat[idx] = old
            assert dx.reshape(-1)[idx] == pytest.approx(
                (hi - lo) / (2 * eps), abs=1e-4
            )


class TestHeadSharding:
    @pytest.mark.parametrize("mp", [1, 2, 4])
    def test_forward_matches_full(self, params, rng, mp):
        x = rng.standard_normal((6, 12))
        full, _ = attention_forward(params, x)
        sharded = HeadShardedAttention(params, mp).forward(x)
        assert np.allclose(sharded, full, rtol=1e-12)

    @pytest.mark.parametrize("mp", [2, 4])
    def test_backward_matches_full(self, params, rng, mp):
        x = rng.standard_normal((6, 12))
        dout = rng.standard_normal((6, 12))
        _, cache = attention_forward(params, x)
        dx_full, grads_full = attention_backward(params, cache, dout)
        sharded = HeadShardedAttention(params, mp)
        dx, shard_grads = sharded.forward_backward(x, dout)
        assert np.allclose(dx, dx_full, rtol=1e-10)
        gathered = sharded.gather_grads(shard_grads)
        for name in ("wq", "wk", "wv", "wo"):
            assert np.allclose(
                getattr(gathered, name), getattr(grads_full, name), rtol=1e-10
            ), name

    def test_indivisible_heads(self, params):
        with pytest.raises(ValueError):
            HeadShardedAttention(params, 3)

    def test_each_core_holds_fraction(self, params):
        sharded = HeadShardedAttention(params, 4)
        assert sharded.shards[0].wq.shape == (12, 3)
        assert sharded.shards[0].num_heads == 1
        total = sum(s.wq.size for s in sharded.shards)
        assert total == params.wq.size

"""Device-major (stacked) collective execution: bit-identity and semantics.

The stacked kernels of :mod:`repro.runtime.collectives` claim the exact
ring accumulation order of the per-device references at any scale — these
tests pin that with hypothesis across policies and with deterministic
256+/4096-device cases, exercise the fault paths (degraded rings,
``on_fault="heal"``) through the stacked mesh storage, and lock down the
bounded-LRU behavior of the scratch/layout/schedule caches.

The full 4096-device run against ``_reference_*`` takes minutes (the
reference is O(n^2) Python steps), so tier-1 pins 4096 devices against the
scalar vectorized kernel (itself reference-pinned here and in
``test_runtime_vectorized.py``) and the reference cross-check at that scale
runs only with ``REPRO_SLOW_TESTS=1``.
"""

import os
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.collectives import (
    _LRUBufferPool,
    _reference_ring_all_gather,
    _reference_ring_all_reduce,
    _reference_ring_reduce_scatter,
    _reference_two_phase_all_reduce,
    padded_chunk_layout,
    ring_all_gather_stacked,
    ring_all_reduce,
    ring_all_reduce_stacked,
    ring_reduce_scatter,
    two_phase_all_reduce_stacked,
)
from repro.runtime.mesh import VirtualMesh
from repro.runtime.stacked import StackedValue

POLICIES = ["f32", "bf16", "f64"]


def _assert_bit_identical(got: np.ndarray, want: np.ndarray) -> None:
    got = np.asarray(got)
    want = np.asarray(want)
    assert got.shape == want.shape
    assert got.dtype == want.dtype
    # Byte comparison: equal NaNs count as identical, -0.0 != +0.0.
    assert got.tobytes() == want.tobytes()


def _inputs(n: int, size: int, seed: int) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    arrays = []
    for _ in range(n):
        a = rng.standard_normal(size).astype(np.float32)
        a *= rng.choice([1.0, 256.0, 2.0**-20], size=size).astype(np.float32)
        arrays.append(a)
    return arrays


def _special_inputs(n: int, size: int, seed: int) -> list[np.ndarray]:
    """Adversarial rows: signed zeros, NaN, +/-inf, f32 overflow."""
    rng = np.random.default_rng(seed)
    arrays = []
    for d in range(n):
        a = rng.standard_normal(size).astype(np.float32)
        a[d % size] = -0.0
        a[(d + 3) % size] = np.nan
        a[(d + 5) % size] = np.inf
        a[(d + 7) % size] = -np.inf
        a[(d + 11) % size] = np.float32(3e38)  # overflow when summed
        arrays.append(a)
    return arrays


class TestStackedValue:
    def test_stack_and_views(self):
        arrays = [np.arange(4.0) + d for d in range(3)]
        v = StackedValue.stack(arrays)
        assert v.num_devices == 3
        assert v.shape == (4,)
        assert not v.replicated
        for d in range(3):
            _assert_bit_identical(v.device_view(d), arrays[d])
        # Distinct rows are writable and independent.
        v.device_view(0)[0] = 99.0
        assert v.device_view(1)[0] == 1.0

    def test_replicated_views_are_read_only_and_shared(self):
        v = StackedValue.replicate(np.ones(5, dtype=np.float32), 8)
        assert v.replicated
        assert v.num_devices == 8
        assert v.block.shape == (1, 5)
        view = v.device_view(7)
        assert not view.flags.writeable
        with pytest.raises(ValueError):
            view[0] = 2.0

    def test_materialized_copies_on_write(self):
        v = StackedValue.replicate(np.ones(3, dtype=np.float32), 4)
        full = v.materialized()
        assert not full.replicated
        assert full.block.shape == (4, 3)
        full.device_view(0)[0] = -1.0
        # The other devices and the original replica are untouched.
        assert full.device_view(1)[0] == 1.0
        assert v.device_view(0)[0] == 1.0
        # Distinct values materialize to themselves.
        assert full.materialized() is full

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            StackedValue(np.ones((3, 2)), 4)
        with pytest.raises(ValueError):
            StackedValue(np.ones((2, 2)), 2, replicated=True)
        with pytest.raises(IndexError):
            StackedValue(np.ones((2, 2)), 2).device_view(2)


class TestStackedBitIdentity:
    @given(
        n=st.integers(min_value=1, max_value=16),
        size=st.integers(min_value=1, max_value=200),
        policy=st.sampled_from(POLICIES),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=80, deadline=None)
    def test_ring_all_reduce_stacked_matches_reference(self, n, size, policy, seed):
        arrays = _inputs(n, size, seed)
        want = _reference_ring_all_reduce(arrays, policy)
        got = ring_all_reduce_stacked(np.stack(arrays), policy)
        assert got.replicated and got.num_devices == n
        for d in range(n):
            _assert_bit_identical(got.device_view(d), want[d])

    @given(
        n=st.integers(min_value=1, max_value=16),
        size=st.integers(min_value=1, max_value=200),
        policy=st.sampled_from(POLICIES),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_reduce_scatter_block_input_matches_reference(
        self, n, size, policy, seed
    ):
        arrays = _inputs(n, size, seed)
        want = _reference_ring_reduce_scatter(arrays, policy)
        got = ring_reduce_scatter(StackedValue.stack(arrays), policy)
        assert got.padded_size == want.padded_size
        for g, w in zip(got.shards, want.shards):
            _assert_bit_identical(g, w)

    @given(
        n=st.integers(min_value=1, max_value=10),
        size=st.integers(min_value=1, max_value=120),
        policy=st.sampled_from(POLICIES),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_all_gather_stacked_matches_reference(self, n, size, policy, seed):
        sv = ring_reduce_scatter(_inputs(n, size, seed), policy)
        want = _reference_ring_all_gather(sv)
        got = ring_all_gather_stacked(sv)
        assert got.num_devices == n
        for d in range(n):
            _assert_bit_identical(got.device_view(d), want[d])

    @given(
        x=st.integers(min_value=1, max_value=5),
        y=st.integers(min_value=1, max_value=5),
        size=st.integers(min_value=1, max_value=100),
        policy=st.sampled_from(POLICIES),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_two_phase_stacked_matches_reference(self, x, y, size, policy, seed):
        flat = _inputs(x * y, size, seed)
        grid = [[flat[i * y + j] for j in range(y)] for i in range(x)]
        want = _reference_two_phase_all_reduce(grid, policy)
        got = two_phase_all_reduce_stacked(np.stack(flat), (x, y), policy)
        for i in range(x):
            for j in range(y):
                _assert_bit_identical(got.device_view(i * y + j), want[i][j])

    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("n", [2, 7])
    def test_special_values_stacked(self, policy, n):
        arrays = _special_inputs(n, 29, 11)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            want = _reference_ring_all_reduce(arrays, policy)
            got = ring_all_reduce_stacked(np.stack(arrays), policy)
            for d in range(n):
                _assert_bit_identical(got.device_view(d), want[d])
            want2 = _reference_two_phase_all_reduce([[a] for a in arrays], policy)
            got2 = two_phase_all_reduce_stacked(np.stack(arrays), (n, 1), policy)
            for i in range(n):
                _assert_bit_identical(got2.device_view(i), want2[i][0])

    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("n", [256, 257])
    def test_bf16_and_f32_at_256_devices_vs_reference(self, policy, n):
        """Deterministic large-scale pin, bf16 rounding and ragged included."""
        size = 37  # ragged: 37 % 256 != 0 exercises padding at scale
        arrays = _inputs(n, size, seed=n)
        # A few special values so the bf16 NaN-checked path runs at scale.
        arrays[0][0] = -0.0
        arrays[1][1 % size] = np.nan
        arrays[2][2 % size] = np.inf
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            want = _reference_ring_all_reduce(arrays, policy)
            got = ring_all_reduce_stacked(np.stack(arrays), policy)
        for d in range(0, n, 51):
            _assert_bit_identical(got.device_view(d), want[d])
        _assert_bit_identical(got.device_view(n - 1), want[n - 1])

    @pytest.mark.parametrize("policy", POLICIES)
    def test_4096_devices_execute_and_match_scalar_kernel(self, policy):
        """A real 4096-device full-mesh all-reduce in tier-1 time.

        The per-device-loop reference at this scale is O(n^2) Python steps
        (minutes), so tier-1 cross-checks the stacked path against the
        scalar vectorized kernel — itself bit-pinned to the reference by
        the hypothesis tests above and in ``test_runtime_vectorized.py`` —
        and the direct reference run is gated behind ``REPRO_SLOW_TESTS``.
        """
        n, size = 4096, 64
        rng = np.random.default_rng(7)
        block = (rng.standard_normal((n, size)) * 256.0).astype(np.float32)
        got = ring_all_reduce_stacked(block, policy)
        assert got.num_devices == n
        want = ring_all_reduce([block[d] for d in range(n)], policy)
        for d in (0, 1, 2047, 4095):
            _assert_bit_identical(got.device_view(d), want[d])
        # 64x64 grid over the same stack executes too.
        grid_result = two_phase_all_reduce_stacked(block, (64, 64), policy)
        assert grid_result.device_view(0).shape == (size,)

    @pytest.mark.skipif(
        not os.environ.get("REPRO_SLOW_TESTS"),
        reason="O(n^2) reference at 4096 devices takes minutes; "
        "set REPRO_SLOW_TESTS=1",
    )
    def test_4096_devices_vs_reference_slow(self):
        n, size = 4096, 64
        rng = np.random.default_rng(7)
        block = (rng.standard_normal((n, size)) * 256.0).astype(np.float32)
        want = _reference_ring_all_reduce([block[d] for d in range(n)], "f32")
        got = ring_all_reduce_stacked(block, "f32")
        for d in range(n):
            _assert_bit_identical(got.device_view(d), want[d])


class TestMeshStacked:
    def test_put_get_stacked_round_trip(self):
        m = VirtualMesh(2, 2)
        block = np.arange(8.0, dtype=np.float32).reshape(4, 2)
        m.put_stacked("w", block)
        assert m.has("w")
        for x in range(2):
            for y in range(2):
                _assert_bit_identical(m.get("w", (x, y)), block[x * 2 + y])
        stacked = m.get_stacked("w")
        assert stacked.block is block

    def test_get_stacked_packs_dict_buffers(self):
        m = VirtualMesh(2, 1)
        m.put("w", (0, 0), np.array([1.0, 2.0]))
        m.put("w", (1, 0), np.array([3.0, 4.0]))
        v = m.get_stacked("w")
        assert v.block.shape == (2, 2)
        _assert_bit_identical(v.device_view(1), np.array([3.0, 4.0]))

    def test_per_device_write_demotes(self):
        m = VirtualMesh(2, 1)
        m.put_stacked("w", np.ones((2, 3), dtype=np.float32))
        m.put("w", (0, 0), np.zeros(3, dtype=np.float32))
        # Device 1 keeps its pre-demotion value; device 0 sees the write.
        assert m.get("w", (0, 0))[0] == 0.0
        assert m.get("w", (1, 0))[0] == 1.0

    def test_all_reduce_result_is_replicated_and_correct(self):
        m = VirtualMesh(2, 2)
        for i, d in enumerate(m.devices()):
            m.put("g", d, np.full(6, float(i), dtype=np.float32))
        m.all_reduce("g", dtype_policy="f32")
        expect = np.full(6, 0.0 + 1.0 + 2.0 + 3.0, dtype=np.float32)
        for d in m.devices():
            np.testing.assert_allclose(m.get("g", d), expect)
        # Result rows share one physical buffer, lazily viewed.
        assert m.get_stacked("g").replicated

    def test_apply_inplace_after_all_reduce(self):
        m = VirtualMesh(2, 1)
        m.put("g", (0, 0), np.ones(4, dtype=np.float32))
        m.put("g", (1, 0), np.ones(4, dtype=np.float32))
        m.all_reduce("g", dtype_policy="f32")

        def bump(buf):
            buf += 1.0

        m.apply_inplace("g", bump)  # demotes the replicated result first
        for d in m.devices():
            np.testing.assert_allclose(m.get("g", d), np.full(4, 3.0))
        # Devices now own distinct memory again.
        m.get("g", (0, 0))[0] = 99.0
        assert m.get("g", (1, 0))[0] == 3.0

    def test_all_reduce_matches_reference_bitwise(self):
        for policy in POLICIES:
            m = VirtualMesh(4, 1)
            arrays = _inputs(4, 33, seed=5)
            for d, a in zip(m.devices(), arrays):
                m.put("g", d, a.copy())
            m.all_reduce("g", dtype_policy=policy)
            want = _reference_ring_all_reduce(arrays, policy)
            got = [
                m.get("g", d).astype(want[0].dtype) for d in m.devices()
            ]
            for g, w in zip(got, want):
                np.testing.assert_array_equal(g, w)

    def test_heal_after_failure_matches_survivor_reference(self):
        """Degraded (survivors-only) collectives stay reference-exact when
        the inputs live in stacked storage from a previous healthy step."""
        for policy in POLICIES:
            m = VirtualMesh(4, 1)
            arrays = _inputs(4, 20, seed=9)
            for d, a in zip(m.devices(), arrays):
                m.put("g", d, a.copy())
            m.all_reduce("g", dtype_policy=policy)  # healthy -> stacked
            first = [np.asarray(m.get("g", d)).copy() for d in m.devices()]
            m.fail_device((2, 0))
            with pytest.raises(Exception):
                m.all_reduce("g", dtype_policy=policy)  # on_fault="raise"
            m.all_reduce("g", dtype_policy=policy, on_fault="heal")
            survivors = [(0, 0), (1, 0), (3, 0)]
            want = _reference_ring_all_reduce(
                [first[0], first[1], first[3]], policy
            )
            for d, w in zip(survivors, want):
                got = np.asarray(m.get("g", d))
                _assert_bit_identical(got.astype(w.dtype), w)

    def test_restore_after_stacked_all_reduce(self):
        m = VirtualMesh(3, 1)
        for d in m.devices():
            m.put("g", d, np.ones(5, dtype=np.float32))
        m.all_reduce("g", dtype_policy="f32")
        m.fail_device((1, 0))
        m.restore_device((1, 0))  # demotes, then drops the stale row
        with pytest.raises(KeyError):
            m.get("g", (1, 0))
        np.testing.assert_allclose(m.get("g", (0, 0)), np.full(5, 3.0))

    def test_checkpoint_assembly_path_get_all(self):
        m = VirtualMesh(2, 1)
        m.put("w", (0, 0), np.arange(3.0))
        m.put("w", (1, 0), np.arange(3.0) + 10)
        m.all_reduce("w", dtype_policy="f32")
        bufs = m.get_all("w")
        assert len(bufs) == 2
        np.testing.assert_allclose(bufs[0], bufs[1])


class TestBoundedCaches:
    def test_scratch_pool_is_bounded_lru(self):
        pool = _LRUBufferPool(maxsize=4)
        a = pool.get((8,), np.float32)
        assert pool.misses == 1 and pool.hits == 0
        assert pool.get((8,), np.float32) is a
        assert pool.hits == 1
        for i in range(10):
            pool.get((i + 100,), np.float32)
        assert len(pool) <= 4
        assert pool.evictions == 10 + 1 - 4
        # The oldest entry was evicted: refetching is a miss, not a hit.
        hits_before = pool.hits
        b = pool.get((8,), np.float32)
        assert pool.hits == hits_before and b is not a

    def test_scratch_pool_telemetry_counts_are_exact(self):
        from repro import telemetry
        from repro.runtime import collectives

        pool = collectives._SCRATCH
        h, m_, e = pool.hits, pool.misses, pool.evictions
        collectives._scratch((3, 5), np.dtype(np.float32))
        collectives._scratch((3, 5), np.dtype(np.float32))
        assert pool.misses >= m_  # first call may hit if shape was pooled
        assert pool.hits >= h + 1
        snap = telemetry.metrics.snapshot()
        assert snap["scratch_pool_cache_hits"]["values"][0]["value"] == pool.hits
        assert (
            snap["scratch_pool_cache_misses"]["values"][0]["value"]
            == pool.misses
        )
        assert (
            snap["scratch_pool_cache_evictions"]["values"][0]["value"]
            == pool.evictions
        )
        assert e <= pool.evictions

    def test_padded_chunk_layout_is_bounded(self):
        info = padded_chunk_layout.cache_info()
        assert info.maxsize == 1024
        padded_chunk_layout(3, 100)
        padded_chunk_layout(3, 100)
        assert padded_chunk_layout.cache_info().hits > info.hits

    def test_bf16_scratch_is_bounded(self):
        from repro.numerics import bfloat16

        for i in range(bfloat16._SCRATCH_MAXSIZE + 50):
            bfloat16._tmp((i + 10_000,), np.uint32)
        assert len(bfloat16._SCRATCH) <= bfloat16._SCRATCH_MAXSIZE


class TestScheduleMemo:
    def test_simulate_phase_memoized(self):
        from repro.comm import schedule
        from repro.hardware.rings import y_ring
        from repro.hardware.topology import TorusMesh

        mesh = TorusMesh(1, 4, wrap_y=True)
        rings = [y_ring(mesh, 0)]
        schedule._PHASE_CACHE.clear()
        first = schedule._simulate_phase(mesh, rings, 1e6, True)
        assert len(schedule._PHASE_CACHE) == 1
        again = schedule._simulate_phase(mesh, rings, 1e6, True)
        assert again == first
        assert len(schedule._PHASE_CACHE) == 1  # hit, not a second entry
        other = schedule._simulate_phase(mesh, rings, 2e6, True)
        assert other != first
        assert len(schedule._PHASE_CACHE) == 2

    def test_simulate_phase_cache_bounded(self):
        from repro.comm import schedule
        from repro.hardware.rings import y_ring
        from repro.hardware.topology import TorusMesh

        mesh = TorusMesh(1, 4, wrap_y=True)
        rings = [y_ring(mesh, 0)]
        schedule._PHASE_CACHE.clear()
        for i in range(schedule._PHASE_CACHE_MAXSIZE + 5):
            schedule._simulate_phase(mesh, rings, float(i + 1), True)
        assert len(schedule._PHASE_CACHE) <= schedule._PHASE_CACHE_MAXSIZE

    def test_degraded_phase_not_memoized(self):
        from repro.comm import schedule
        from repro.hardware.rings import y_ring
        from repro.hardware.topology import TorusMesh
        from repro.resilience.faults import FaultPlan

        mesh = TorusMesh(1, 4, wrap_y=True)
        ring = y_ring(mesh, 0)
        schedule._PHASE_CACHE.clear()
        result = schedule.simulate_degraded_reduce_scatter(
            mesh, ring, 1e6, FaultPlan()
        )
        assert result.seconds > 0
        assert len(schedule._PHASE_CACHE) == 0

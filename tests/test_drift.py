"""Model-vs-measured drift tests: the analytic cost models and the DES
must still agree, the gate must trip when they stop agreeing, and the
gauges must land in the registry."""

from __future__ import annotations

import pytest

from repro import telemetry
from repro.telemetry.drift import (
    DEFAULT_TOLERANCE,
    DriftEntry,
    check_drift,
    drift_report,
    format_report,
    max_drift,
    overlap_drift,
    ring_drift,
    two_phase_drift,
)


@pytest.fixture(autouse=True)
def _clean_telemetry():
    telemetry.enable()
    telemetry.reset()
    yield
    telemetry.enable()
    telemetry.reset()


class TestDriftEntry:
    def test_relative_drift(self):
        e = DriftEntry("c", "p", measured_s=1.1, predicted_s=1.0)
        assert e.drift_rel == pytest.approx(0.1)

    def test_zero_prediction_uses_absolute_floor(self):
        # A 1e-15 round-off sliver against a predicted 0.0 must not read
        # as huge relative drift: the denominator floors at 1 ns.
        e = DriftEntry("c", "p", measured_s=1e-15, predicted_s=0.0)
        assert e.drift_rel < 1e-5

    def test_to_json(self):
        blob = DriftEntry("c", "p", 2.0, 1.0).to_json()
        assert blob["case"] == "c" and blob["drift_rel"] == pytest.approx(1.0)


class TestModelAgreement:
    def test_ring_drift_within_tolerance(self):
        entries = ring_drift()
        assert entries
        assert max_drift(entries) < DEFAULT_TOLERANCE

    def test_two_phase_drift_within_tolerance(self):
        entries = two_phase_drift()
        phases = {e.phase for e in entries}
        assert {"reduce_scatter_y", "all_gather_y"} <= phases
        assert max_drift(entries) < DEFAULT_TOLERANCE

    def test_overlap_drift_within_tolerance(self):
        entries = overlap_drift(models=("resnet50",))
        phases = {e.phase for e in entries}
        assert {"step", "exposed_comm", "hidden_comm", "wire_comm"} <= phases
        assert max_drift(entries) < DEFAULT_TOLERANCE

    def test_full_report_within_tolerance(self):
        entries = drift_report()
        ok, bad = check_drift(entries)
        assert ok, f"drift past tolerance: {[(e.case, e.phase) for e in bad]}"


class TestGate:
    def test_check_drift_trips_on_tight_tolerance(self):
        entries = ring_drift()
        ok, bad = check_drift(entries, tolerance=1e-300)
        assert not ok
        assert bad

    def test_check_drift_flags_injected_rot(self):
        entries = [
            DriftEntry("good", "p", 1.0, 1.0),
            DriftEntry("rotten", "p", 1.5, 1.0),
        ]
        ok, bad = check_drift(entries, tolerance=1e-6)
        assert not ok
        assert [e.case for e in bad] == ["rotten"]

    def test_gauges_exported(self):
        entries = drift_report(include_overlap=False)
        snap = telemetry.metrics.snapshot()
        assert "model_drift_rel" in snap
        assert "model_drift_max" in snap
        e = entries[0]
        assert telemetry.metrics.value(
            "model_drift_rel", case=e.case, phase=e.phase
        ) == pytest.approx(e.drift_rel, abs=0)

    def test_format_report(self):
        entries = ring_drift()
        text = format_report(entries, tolerance=DEFAULT_TOLERANCE)
        assert "max relative drift" in text
        assert entries[0].case in text

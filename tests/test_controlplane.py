"""Control-plane tests: host groups, heartbeats, barriers, guards, chaos.

The acceptance contracts of PR 4, pinned:

* the shared ``host_map`` rule agrees with ``TorusMesh.host_of`` and is
  the same geometry ``fail_host`` and ``HostGroup`` use;
* ``HeartbeatDetector``'s closed-form latency is reproduced event by
  event by its discrete-event simulation, and a suspicion threshold > 1
  rides out a link-flap window that a threshold of 1 false-kills on;
* oracle-vs-heartbeat chaos goodput differs by *exactly* the accounted
  detection latency on a hand-checkable 2x2 case, and replays are
  deterministic;
* injected bit-flip SDC is caught within the guard's check interval and
  training recovers bit-identical to an uninterrupted reference on both
  recovery paths (resync and ambiguous-vote rewind);
* coordinator death kills a single-client job but not a multi-client
  one in the same scenario.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import telemetry
from repro.controlplane import (
    Barrier,
    ConsistencyGuard,
    HeartbeatDetector,
    HostGroup,
    JobKilledError,
    MultiClientGroup,
    OracleDetector,
    RiskAdaptive,
    SilentCorruptionError,
    SingleClientCoordinator,
    StepInterval,
    WallClockInterval,
    apply_bit_flips,
    pipeline_arrivals,
    resolve_barrier,
    step_arrivals,
)
from repro.core.data_parallel import DataParallelTrainer
from repro.hardware.topology import TorusMesh
from repro.input_pipeline.host import HostPipelineResult
from repro.input_pipeline.imbalance import ImbalanceReport
from repro.models.mlp import MLP
from repro.optim.adam import Adam
from repro.resilience.chaos import ChaosConfig, run_chaos
from repro.resilience.faults import (
    BitFlipFault,
    ChipFailure,
    DeviceLostError,
    FaultPlan,
    LinkFault,
    PreemptionSignal,
    StragglerFault,
    fail_host,
    host_map,
)
from repro.sim.engine import Simulator

LAYERS = [8, 16, 4]


def _factory(n: int, seed: int = 7):
    trainer = DataParallelTrainer(MLP(LAYERS), Adam(learning_rate=0.01), dp_x=n)
    trainer.init(np.random.default_rng(seed))
    return trainer


def _batch(step: int, batch_size: int = 12):
    rng = np.random.default_rng(40_000 + step)
    x = rng.standard_normal((batch_size, LAYERS[0]))
    labels = rng.integers(0, LAYERS[-1], size=batch_size)
    return x, labels


def _params_equal(a, b) -> bool:
    return set(a) == set(b) and all(np.array_equal(a[k], b[k]) for k in a)


# ---------------------------------------------------------------------------
# host_map / HostGroup: one geometry rule everywhere
# ---------------------------------------------------------------------------


class TestHostMap:
    def test_agrees_with_torus_host_of(self):
        mesh = TorusMesh(8, 4)
        hosts = host_map(mesh)
        for host, chips in hosts.items():
            for device in chips:
                assert mesh.host_of(device) == host

    def test_tuple_topology_blocks(self):
        hosts = host_map((4, 4), chips_per_host=8)
        assert sorted(hosts) == [0, 1]
        assert len(hosts[0]) == len(hosts[1]) == 8
        # Row-major: chip (x, y) -> block (x*4 + y) // 8.
        assert (0, 0) in hosts[0] and (1, 3) in hosts[0]
        assert (2, 0) in hosts[1] and (3, 3) in hosts[1]

    def test_host_group_shares_the_rule(self):
        group = HostGroup((4, 4), chips_per_host=4)
        assert group.hosts == host_map((4, 4), chips_per_host=4)
        for host, chips in group.hosts.items():
            for device in chips:
                assert group.host_of(device) == host

    def test_chips_of_unknown_host(self):
        group = HostGroup((4, 4), chips_per_host=8)
        with pytest.raises(ValueError):
            group.chips_of(99)

    def test_fail_host_matches_group_domain(self):
        group = HostGroup((4, 4), chips_per_host=8)
        failures = fail_host((4, 4), 1, chips_per_host=8, at_step=3)
        assert all(isinstance(f, ChipFailure) for f in failures)
        assert tuple(f.device for f in failures) == group.chips_of(1)
        assert all(f.at_step == 3 for f in failures)
        with pytest.raises(ValueError):
            fail_host((4, 4), 99, chips_per_host=8)


class TestFaultPlanExtensions:
    def test_validation(self):
        with pytest.raises(ValueError):
            PreemptionSignal(host=0, at_step=1, grace_s=-1.0)
        with pytest.raises(ValueError):
            BitFlipFault(device=(0, 0), at_step=1, bit=32)

    def test_step_queries(self):
        plan = FaultPlan(
            preemptions=(PreemptionSignal(host=1, at_step=4),),
            bit_flips=(BitFlipFault(device=(0, 0), at_step=2),),
        )
        assert plan.preemptions_at_step(4)[0].host == 1
        assert plan.preemptions_at_step(3) == ()
        assert plan.bit_flips_at_step(2)[0].device == (0, 0)
        assert plan.bit_flips_at_step(4) == ()

    def test_sample_deterministic_with_new_classes(self):
        kwargs = dict(
            expected_preemptions=2.0, expected_bit_flips=2.0,
            chips_per_host=4,
        )
        a = FaultPlan.sample(11, (4, 4), 30, **kwargs)
        b = FaultPlan.sample(11, (4, 4), 30, **kwargs)
        assert a == b
        assert a.num_events >= 0
        hosts = host_map((4, 4), 4)
        assert all(p.host in hosts for p in a.preemptions)


# ---------------------------------------------------------------------------
# Heartbeat detection: closed form == discrete-event simulation
# ---------------------------------------------------------------------------


class TestHeartbeatDetector:
    def test_validation(self):
        with pytest.raises(ValueError):
            HeartbeatDetector(interval_s=0.0)
        with pytest.raises(ValueError):
            HeartbeatDetector(timeout_s=0.0)
        with pytest.raises(ValueError):
            HeartbeatDetector(suspicion_threshold=0)

    def test_closed_form_hand_checks(self):
        det = HeartbeatDetector(1.0, 0.5, 2)
        # Dies at 2.3: first missed beat is #3 (t=3), declared at the
        # second consecutive missed check (t=4 + 0.5 timeout).
        assert det.detection_latency(2.3) == pytest.approx(4.5 - 2.3)
        # Dies exactly on a deadline: that beat is never sent.
        assert det.detection_latency(2.0) == pytest.approx(3.5 - 2.0)
        # Dies before the first beat.
        assert det.detection_latency(0.0) == pytest.approx(2.5)

    @pytest.mark.parametrize("fault_time", [0.0, 0.4, 1.0, 2.3, 7.9])
    @pytest.mark.parametrize("threshold", [1, 2, 3])
    def test_simulation_reproduces_closed_form(self, fault_time, threshold):
        det = HeartbeatDetector(1.0, 0.5, threshold)
        group = HostGroup((4, 4), chips_per_host=8)
        topology = MultiClientGroup(group)
        detections = det.simulate(topology, {1: fault_time})
        assert len(detections) == 1
        d = detections[0]
        assert d.host == 1 and not d.false_positive
        assert d.latency == pytest.approx(det.detection_latency(fault_time))

    def test_single_client_worker_death_detected_by_coordinator(self):
        det = HeartbeatDetector(1.0, 0.5, 2)
        group = HostGroup((8, 4), chips_per_host=8)  # 4 hosts
        topology = SingleClientCoordinator(group)
        detections = det.simulate(topology, {2: 3.0})
        assert [d.host for d in detections] == [2]
        assert detections[0].by == topology.coordinator

    def test_coordinator_death_is_unobserved(self):
        """Nobody monitors the monitor: the SPOF hole, as a non-detection."""
        det = HeartbeatDetector(1.0, 0.5, 2)
        group = HostGroup((8, 4), chips_per_host=8)
        single = SingleClientCoordinator(group)
        assert det.simulate(single, {0: 3.0}) == []
        # The same death under the peer ring *is* detected...
        multi = MultiClientGroup(group)
        detections = det.simulate(multi, {0: 3.0})
        assert [d.host for d in detections] == [0]
        # ...and only the single-client topology calls it fatal.
        with pytest.raises(JobKilledError):
            single.check_host_failure(0)
        multi.check_host_failure(0)  # survivors re-form; no exception

    def test_flap_window_needs_threshold_above_one(self):
        """Heartbeat flapping across a LinkFault window: threshold 1
        false-kills an alive host, threshold 2 rides it out."""
        group = HostGroup((4, 4), chips_per_host=8)  # hosts 0, 1
        topology = MultiClientGroup(group)
        # Host 0's beats to its observer (host 1) are dropped inside
        # [2.8, 3.2): exactly one beat (t=3) is lost.
        flap = LinkFault(
            src=(0, 0), dst=(2, 0), start=2.8, duration=0.4, factor=0.0,
            bidirectional=False,  # only host 0's beats to host 1 are lost
        )
        plan = FaultPlan(link_faults=(flap,))
        trigger_happy = HeartbeatDetector(1.0, 0.5, 1)
        detections = trigger_happy.simulate(
            topology, {}, plan=plan, horizon_s=10.0
        )
        assert [d.host for d in detections] == [0]
        assert detections[0].false_positive
        patient = HeartbeatDetector(1.0, 0.5, 2)
        assert patient.simulate(topology, {}, plan=plan, horizon_s=10.0) == []

    def test_oracle_detector(self):
        assert OracleDetector(0.5).detection_latency(123.0) == 0.5
        with pytest.raises(ValueError):
            OracleDetector(-1.0)


# ---------------------------------------------------------------------------
# Barrier: timeout and straggler attribution
# ---------------------------------------------------------------------------


class TestBarrier:
    def test_zero_participants_releases_immediately(self):
        result = resolve_barrier({}, timeout_s=5.0)
        assert not result.timed_out
        assert result.arrived == () and result.stragglers == ()

    def test_all_arrive_releases_at_last(self):
        result = resolve_barrier({0: 1.0, 1: 3.0, 2: 2.0}, timeout_s=5.0)
        assert not result.timed_out
        assert result.released_at == pytest.approx(3.0)
        assert result.arrived == (0, 1, 2) and result.stragglers == ()

    def test_all_hosts_straggle(self):
        result = resolve_barrier({0: 9.0, 1: 8.0}, timeout_s=5.0)
        assert result.timed_out
        assert result.released_at == pytest.approx(5.0)
        assert result.arrived == () and result.stragglers == (0, 1)

    def test_partial_timeout_names_the_stragglers(self):
        result = resolve_barrier({0: 1.0, 1: 99.0, 2: 2.0}, timeout_s=5.0)
        assert result.timed_out
        assert result.arrived == (0, 2) and result.stragglers == (1,)

    def test_late_and_unknown_arrivals(self):
        sim = Simulator()
        barrier = Barrier(sim, (0, 1), timeout_s=1.0)
        with pytest.raises(ValueError):
            barrier.arrive(7)
        sim.run()  # nobody arrives; times out
        assert barrier.event.value.timed_out
        barrier.arrive(0)  # late: recorded, result unchanged
        assert barrier.event.value.stragglers == (0, 1)
        assert barrier.arrival_time(0) == pytest.approx(1.0)

    def test_step_arrivals_blames_the_straggling_host(self):
        group = HostGroup((4, 4), chips_per_host=8)  # hosts 0, 1
        plan = FaultPlan(
            stragglers=(
                StragglerFault(
                    device=(3, 0), start_step=5, duration_steps=3, slowdown=4.0
                ),
            )
        )
        arrivals = step_arrivals(plan, group, step=6, base_step_seconds=1.0)
        assert arrivals == {0: 1.0, 1: 4.0}
        result = resolve_barrier(arrivals, timeout_s=2.0)
        assert result.stragglers == (1,)
        # Outside the straggler window everyone makes it.
        clean = step_arrivals(plan, group, step=20, base_step_seconds=1.0)
        assert not resolve_barrier(clean, timeout_s=2.0).timed_out

    def test_pipeline_arrivals_from_imbalance_report(self):
        slow = HostPipelineResult(
            steps=10, device_step_seconds=1.0, total_seconds=15.0,
            stall_seconds=5.0,
        )
        fast = HostPipelineResult(
            steps=10, device_step_seconds=1.0, total_seconds=10.0,
            stall_seconds=0.0,
        )
        report = ImbalanceReport(
            label="test", num_hosts=3, per_host=(fast, slow, fast)
        )
        arrivals = pipeline_arrivals(report, device_step_seconds=2.0)
        assert arrivals[0] == pytest.approx(2.0)
        assert arrivals[1] == pytest.approx(3.0)
        result = resolve_barrier(arrivals, timeout_s=2.5)
        assert result.stragglers == (1,)


# ---------------------------------------------------------------------------
# Checkpoint policies
# ---------------------------------------------------------------------------


class TestCheckpointPolicies:
    def test_step_interval_matches_legacy_modulo(self):
        policy = StepInterval(4)
        hits = [
            step for step in range(1, 13)
            if policy.should_checkpoint(
                step=step, now_s=float(step),
                last_checkpoint_step=4 * ((step - 1) // 4),
                last_checkpoint_time_s=0.0,
            )
        ]
        assert hits == [4, 8, 12]

    def test_wall_clock_interval(self):
        policy = WallClockInterval(10.0)
        assert not policy.should_checkpoint(
            step=3, now_s=9.0, last_checkpoint_step=0,
            last_checkpoint_time_s=0.0,
        )
        assert policy.should_checkpoint(
            step=4, now_s=12.0, last_checkpoint_step=0,
            last_checkpoint_time_s=0.0,
        )

    def test_risk_adaptive_young_daly(self):
        policy = RiskAdaptive(hazard_per_second=0.02, checkpoint_seconds=1.0)
        assert policy.interval_s == pytest.approx(np.sqrt(2 * 1.0 / 0.02))
        assert RiskAdaptive(0.0, 1.0).interval_s == np.inf

    def test_risk_adaptive_from_plan(self):
        plan = FaultPlan(
            chip_failures=(ChipFailure((0, 0), at_step=3),),
            preemptions=(PreemptionSignal(host=0, at_step=7),),
        )
        policy = RiskAdaptive.from_plan(
            plan, horizon_s=100.0, state_bytes=int(2e9),
            bandwidth_bytes_per_s=1e9,
        )
        assert policy.hazard_per_second == pytest.approx(2 / 100.0)
        assert policy.checkpoint_seconds == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            StepInterval(0)
        with pytest.raises(ValueError):
            WallClockInterval(0.0)
        with pytest.raises(ValueError):
            RiskAdaptive(-1.0, 1.0)


# ---------------------------------------------------------------------------
# Consistency guard: hashes, bit flips, tripwires
# ---------------------------------------------------------------------------


class TestConsistencyGuard:
    def test_apply_bit_flips_is_a_sparse_involution(self):
        params = {"w": np.arange(6, dtype=np.float64).reshape(2, 3)}
        flip = BitFlipFault(device=(0, 0), at_step=1, param="w", index=4, bit=7)
        once = apply_bit_flips(params, [flip])
        assert not np.array_equal(once["w"], params["w"])
        # Only one element differs, and flipping again restores it.
        assert int(np.sum(once["w"] != params["w"])) == 1
        twice = apply_bit_flips(once, [flip])
        assert np.array_equal(twice["w"], params["w"])

    def test_param_hash_detects_the_flip(self):
        guard = ConsistencyGuard()
        params = {"w": np.ones(4), "b": np.zeros(2)}
        flipped = apply_bit_flips(
            params, [BitFlipFault(device=(0, 0), at_step=1, param="b", bit=3)]
        )
        assert guard.param_hash(params) != guard.param_hash(flipped)
        assert guard.param_hash(params) == guard.param_hash(
            {k: v.copy() for k, v in params.items()}
        )

    def test_find_desynced_majority_and_tie(self):
        guard = ConsistencyGuard()
        assert guard.find_desynced({}) == ((), False)
        assert guard.find_desynced({(0, 0): "a", (1, 0): "a"}) == ((), False)
        desynced, ambiguous = guard.find_desynced(
            {(0, 0): "a", (1, 0): "a", (2, 0): "b"}
        )
        assert desynced == ((2, 0),) and not ambiguous
        desynced, ambiguous = guard.find_desynced({(0, 0): "a", (1, 0): "b"})
        assert desynced == ((0, 0), (1, 0)) and ambiguous

    def test_scan_tree_raises_or_counts(self):
        guard = ConsistencyGuard(on_nonfinite="raise")
        tree = {"ok": np.ones(3), "bad": np.array([1.0, np.nan])}
        with pytest.raises(SilentCorruptionError) as err:
            guard.scan_tree(tree, kind="gradient", step=5)
        assert err.value.names == ("bad",) and err.value.step == 5
        counting = ConsistencyGuard(on_nonfinite="count")
        assert counting.scan_tree(tree) == ("bad",)

    def test_trainer_guard_hook_trips_on_nonfinite_gradients(self):
        trainer = _factory(2)
        trainer.guard = ConsistencyGuard(on_nonfinite="raise")
        x, labels = _batch(0)
        trainer.step(x, labels)  # healthy step passes the tripwire
        name = sorted(trainer.params)[0]
        trainer.params[name] = np.full_like(trainer.params[name], np.nan)
        with pytest.raises(SilentCorruptionError):
            trainer.step(x, labels)

    def test_validation(self):
        with pytest.raises(ValueError):
            ConsistencyGuard(check_interval=0)
        with pytest.raises(ValueError):
            ConsistencyGuard(on_nonfinite="explode")


# ---------------------------------------------------------------------------
# run_chaos with the control plane wired in
# ---------------------------------------------------------------------------


class TestChaosDetector:
    PLAN = FaultPlan(chip_failures=(ChipFailure((1, 1), at_step=7),))
    CONFIG = ChaosConfig(
        mesh_shape=(2, 2), target_steps=12, checkpoint_interval=4,
        detection_timeout_s=0.5, restore_bandwidth_bytes_per_s=1e9,
    )

    def test_oracle_vs_heartbeat_exact_latency_delta(self):
        """Hand check on 2x2: steps 0..7 run (8 s), the failure hangs the
        fleet until detection, then a 1 s restore (1 GB @ 1 GB/s) rewinds
        to step 4.  The only difference between oracle and heartbeat runs
        is the accounted detection latency."""
        oracle = run_chaos(self.PLAN, self.CONFIG, state_bytes=int(1e9))
        detector = HeartbeatDetector(1.0, 0.5, 2)
        heartbeat = run_chaos(
            self.PLAN, self.CONFIG, state_bytes=int(1e9), detector=detector
        )
        expected_latency = detector.detection_latency(8.0)  # hang starts t=8
        assert heartbeat.detections == 1
        assert heartbeat.mttd_seconds == pytest.approx(expected_latency)
        assert heartbeat.total_seconds - oracle.total_seconds == pytest.approx(
            expected_latency - self.CONFIG.detection_timeout_s
        )
        assert heartbeat.lost_steps == oracle.lost_steps == 4
        assert heartbeat.goodput < oracle.goodput

    def test_heartbeat_replay_is_deterministic(self):
        runs = [
            run_chaos(
                self.PLAN, self.CONFIG, state_bytes=int(1e9),
                detector=HeartbeatDetector(1.0, 0.5, 2),
            )
            for _ in range(2)
        ]
        assert runs[0].mttd_seconds == runs[1].mttd_seconds
        assert runs[0].total_seconds == runs[1].total_seconds
        assert runs[0].goodput == runs[1].goodput

    def test_sampled_plan_replay_is_deterministic(self):
        config = ChaosConfig(
            mesh_shape=(4, 4), target_steps=30, checkpoint_interval=5
        )
        reports = [
            run_chaos(
                FaultPlan.sample(9, (4, 4), 30, expected_chip_failures=2.0),
                config, state_bytes=int(1e9),
                detector=HeartbeatDetector(2.0, 1.0, 2),
            )
            for _ in range(2)
        ]
        assert reports[0].mttd_seconds == reports[1].mttd_seconds
        assert reports[0].goodput == reports[1].goodput

    def test_larger_mttd_lowers_accounting_goodput(self):
        """The accounting-only mode threads detection latency into
        goodput: a lazier heartbeat visibly costs throughput."""
        fast = run_chaos(
            self.PLAN, self.CONFIG, state_bytes=int(1e9),
            detector=OracleDetector(0.0),
        )
        slow = run_chaos(
            self.PLAN, self.CONFIG, state_bytes=int(1e9),
            detector=OracleDetector(25.0),
        )
        assert slow.goodput < fast.goodput
        assert slow.total_seconds - fast.total_seconds == pytest.approx(25.0)


class TestChaosPreemption:
    def test_grace_window_save_loses_nothing(self):
        plan = FaultPlan(
            preemptions=(PreemptionSignal(host=0, at_step=6, grace_s=30.0),)
        )
        config = ChaosConfig(
            mesh_shape=(4, 4), target_steps=10, checkpoint_interval=4,
            chips_per_host=8, restore_bandwidth_bytes_per_s=1e9,
        )
        report = run_chaos(plan, config, state_bytes=int(2e9))
        assert report.preemptions == 1
        assert report.preempt_checkpoints_saved == 1
        assert report.lost_steps == 0
        assert report.detections == 0  # announced death: nothing to detect
        assert report.survivors == 8

    def test_short_grace_window_loses_steps(self):
        plan = FaultPlan(
            preemptions=(PreemptionSignal(host=0, at_step=6, grace_s=1.0),)
        )
        config = ChaosConfig(
            mesh_shape=(4, 4), target_steps=10, checkpoint_interval=4,
            chips_per_host=8, restore_bandwidth_bytes_per_s=1e9,
        )
        report = run_chaos(plan, config, state_bytes=int(2e9))
        assert report.preempt_checkpoints_saved == 0
        assert report.lost_steps == 2  # steps 4, 5 redone from the step-4 ckpt

    def test_preemption_with_trainer_stays_bit_identical(self):
        plan = FaultPlan(
            preemptions=(PreemptionSignal(host=0, at_step=5, grace_s=60.0),)
        )
        config = ChaosConfig(
            mesh_shape=(4, 1), target_steps=8, checkpoint_interval=3,
            chips_per_host=2,
        )
        report = run_chaos(
            plan, config, trainer_factory=_factory, batch_fn=_batch
        )
        assert report.survivors == 2 and report.lost_steps == 0
        # Reference: a clean run to the preemption point on the full mesh,
        # whose grace-window snapshot is restored onto the surviving shape
        # and resumed — the bit-identity contract of the elastic restore.
        reference = _factory(4)
        for step in range(5):
            reference.step(*_batch(step))
        survivor = _factory(2)
        survivor.restore_checkpoint(reference.save_checkpoint())
        for step in range(5, 8):
            survivor.step(*_batch(step))
        assert _params_equal(report.final_params, survivor.params)

    def test_preempting_every_host_raises(self):
        plan = FaultPlan(
            preemptions=(
                PreemptionSignal(host=0, at_step=2),
                PreemptionSignal(host=1, at_step=2),
            )
        )
        config = ChaosConfig(
            mesh_shape=(4, 4), target_steps=10, chips_per_host=8
        )
        with pytest.raises(DeviceLostError):
            run_chaos(plan, config, state_bytes=1)


class TestChaosSilentCorruption:
    def test_resync_recovers_bit_identical(self):
        """4 replicas, 1 flip: majority vote quarantines the minority and
        the final params match an uninterrupted reference exactly."""
        plan = FaultPlan(
            bit_flips=(
                BitFlipFault(device=(1, 0), at_step=5, index=3, bit=12),
            )
        )
        config = ChaosConfig(
            mesh_shape=(4, 1), target_steps=10, checkpoint_interval=4
        )
        guard = ConsistencyGuard(check_interval=2)
        report = run_chaos(
            plan, config, trainer_factory=_factory, batch_fn=_batch,
            guard=guard,
        )
        assert report.desyncs_caught == 1
        event = report.desync_events[0]
        assert event.recovery == "resync"
        assert event.device == (1, 0)
        assert event.detection_steps <= guard.check_interval
        reference = run_chaos(
            FaultPlan(), config, trainer_factory=_factory, batch_fn=_batch
        )
        assert _params_equal(report.final_params, reference.final_params)

    def test_ambiguous_vote_rewinds_bit_identical(self):
        """2 replicas disagree 1-1: no trustworthy donor, so the fleet
        rewinds to the checkpoint and replays clean."""
        plan = FaultPlan(
            bit_flips=(
                BitFlipFault(device=(1, 0), at_step=5, index=1, bit=11),
            )
        )
        config = ChaosConfig(
            mesh_shape=(2, 1), target_steps=10, checkpoint_interval=4
        )
        report = run_chaos(
            plan, config, trainer_factory=_factory, batch_fn=_batch,
            guard=ConsistencyGuard(check_interval=2),
        )
        assert report.desyncs_caught == 1
        assert report.desync_events[0].recovery == "rewind"
        assert report.restarts == 1
        assert report.lost_steps == 2  # caught after step 6, rewound to 4
        reference = run_chaos(
            FaultPlan(), config, trainer_factory=_factory, batch_fn=_batch
        )
        assert _params_equal(report.final_params, reference.final_params)

    def test_accounting_mode_tracks_desyncs(self):
        plan = FaultPlan(
            bit_flips=(
                BitFlipFault(device=(1, 0), at_step=5, index=3, bit=12),
            )
        )
        config = ChaosConfig(
            mesh_shape=(4, 1), target_steps=10, checkpoint_interval=4
        )
        report = run_chaos(
            plan, config, state_bytes=1000,
            guard=ConsistencyGuard(check_interval=2, hash_seconds=0.5),
        )
        assert report.desyncs_caught == 1
        assert report.guard_checks == 5
        # 10 steps + 5 hash rounds + one resync transfer (1000 B @ 1 GB/s).
        assert report.total_seconds == pytest.approx(10 + 5 * 0.5 + 1e-6)

    def test_uncaught_without_a_guard(self):
        plan = FaultPlan(
            bit_flips=(
                BitFlipFault(device=(1, 0), at_step=5, index=3, bit=12),
            )
        )
        config = ChaosConfig(mesh_shape=(4, 1), target_steps=10)
        report = run_chaos(plan, config, state_bytes=1000)
        assert report.desyncs_caught == 0  # SDC is silent by definition


class TestChaosPolicies:
    def test_checkpoint_write_cost_is_charged(self):
        config = ChaosConfig(
            mesh_shape=(2, 2), target_steps=12, checkpoint_interval=4,
            checkpoint_write_seconds=0.25,
        )
        report = run_chaos(FaultPlan(), config, state_bytes=1)
        # Checkpoints at steps 4 and 8 (not 12: the run is over).
        assert report.checkpoints_taken == 3  # initial + 2
        assert report.total_seconds == pytest.approx(12 + 2 * 0.25)

    def test_wall_clock_policy_checkpoints_by_time(self):
        config = ChaosConfig(
            mesh_shape=(2, 2), target_steps=10, checkpoint_interval=3
        )
        report = run_chaos(
            FaultPlan(), config, state_bytes=1,
            checkpoint_policy=WallClockInterval(4.0),
        )
        # 1 s steps: snapshots after steps 4 and 8, plus the initial one.
        assert report.checkpoints_taken == 3

    def test_risk_adaptive_policy_runs(self):
        plan = FaultPlan.sample(3, (4, 4), 40, expected_chip_failures=2.0)
        config = ChaosConfig(
            mesh_shape=(4, 4), target_steps=40, checkpoint_interval=5
        )
        policy = RiskAdaptive.from_plan(
            plan, horizon_s=40.0, state_bytes=int(1e9),
            bandwidth_bytes_per_s=1e9,
        )
        report = run_chaos(
            plan, config, state_bytes=int(1e9), checkpoint_policy=policy
        )
        assert report.steps_executed >= 40


class TestChaosTelemetry:
    def test_controlplane_counters_recorded(self):
        telemetry.enable()
        telemetry.reset()
        try:
            plan = FaultPlan(
                chip_failures=(ChipFailure((1, 0), at_step=7),),
                preemptions=(
                    PreemptionSignal(host=0, at_step=10, grace_s=60.0),
                ),
                bit_flips=(
                    BitFlipFault(device=(3, 0), at_step=2, index=1, bit=9),
                ),
            )
            config = ChaosConfig(
                mesh_shape=(4, 1), target_steps=14, checkpoint_interval=4,
                chips_per_host=2,
            )
            report = run_chaos(
                plan, config, state_bytes=1000,
                detector=HeartbeatDetector(1.0, 0.5, 2),
                guard=ConsistencyGuard(check_interval=2),
            )
            m = telemetry.metrics
            assert m.value("controlplane_detections") == report.detections == 1
            assert m.value("controlplane_detection_seconds") == pytest.approx(
                report.detection_seconds
            )
            assert m.value("controlplane_preemptions") == 1
            assert m.value("controlplane_preempt_checkpoints") == 1
            assert m.value("controlplane_bit_flips_injected") == 1
            assert m.value("controlplane_hash_checks") == report.guard_checks
            assert m.value("controlplane_desyncs_caught") == 1
            from repro.telemetry.report import step_breakdown

            breakdown = step_breakdown()
            assert "controlplane_detections" in breakdown
            assert "controlplane_preemptions" in breakdown
        finally:
            telemetry.reset()

"""MLP model tests: gradients, training progress, synthetic data."""

import numpy as np
import pytest

from repro.models.mlp import MLP, synthetic_classification
from repro.optim import SGDMomentum


class TestConstruction:
    def test_param_shapes(self, rng):
        m = MLP([8, 16, 4])
        params = m.init_params(rng)
        assert params["w0"].shape == (8, 16)
        assert params["b1"].shape == (4,)
        assert m.num_layers == 2

    def test_too_few_layers(self):
        with pytest.raises(ValueError):
            MLP([5])

    def test_bad_sizes(self):
        with pytest.raises(ValueError):
            MLP([5, 0, 3])


class TestForwardBackward:
    def test_forward_shape(self, rng):
        m = MLP([6, 10, 3])
        params = m.init_params(rng)
        logits = m.forward(params, rng.standard_normal((7, 6)))
        assert logits.shape == (7, 3)

    def test_gradients_match_numerical(self, rng):
        m = MLP([4, 6, 3])
        params = m.init_params(rng)
        x = rng.standard_normal((5, 4))
        labels = rng.integers(0, 3, 5)
        _, grads = m.loss_and_grad(params, x, labels)
        eps = 1e-6
        for key in params:
            flat = params[key].reshape(-1)
            for idx in range(0, flat.size, max(1, flat.size // 5)):
                old = flat[idx]
                flat[idx] = old + eps
                hi, _ = m.loss_and_grad(params, x, labels)
                flat[idx] = old - eps
                lo, _ = m.loss_and_grad(params, x, labels)
                flat[idx] = old
                num = (hi - lo) / (2 * eps)
                assert np.asarray(grads[key]).reshape(-1)[idx] == pytest.approx(
                    num, abs=1e-5
                )

    def test_loss_decreases_with_training(self, rng):
        m = MLP([10, 24, 4])
        x, labels = synthetic_classification(rng, 128, 10, 4)
        params = m.init_params(rng)
        opt = SGDMomentum(0.1)
        state = opt.init_state(params)
        first, _ = m.loss_and_grad(params, x, labels)
        for step in range(40):
            _, grads = m.loss_and_grad(params, x, labels)
            params, state = opt.update(params, dict(grads), state, step)
        last, _ = m.loss_and_grad(params, x, labels)
        assert last < first * 0.5

    def test_accuracy_and_predict(self, rng):
        m = MLP([10, 24, 4])
        x, labels = synthetic_classification(rng, 64, 10, 4)
        params = m.init_params(rng)
        acc = m.accuracy(params, x, labels)
        assert 0.0 <= acc <= 1.0
        assert m.predict(params, x).shape == (64,)
        proba = m.predict_proba(params, x)
        assert np.allclose(proba.sum(axis=-1), 1.0)


class TestSyntheticData:
    def test_shapes(self, rng):
        x, y = synthetic_classification(rng, 100, 8, 3)
        assert x.shape == (100, 8)
        assert y.shape == (100,)
        assert set(np.unique(y)) <= set(range(3))

    def test_learnable(self, rng):
        """Low noise makes classes separable: a trained MLP beats chance."""
        x, y = synthetic_classification(rng, 256, 8, 4, noise=0.05)
        m = MLP([8, 32, 4])
        params = m.init_params(rng)
        opt = SGDMomentum(0.2)
        state = opt.init_state(params)
        for step in range(60):
            _, grads = m.loss_and_grad(params, x, y)
            params, state = opt.update(params, dict(grads), state, step)
        assert m.accuracy(params, x, y) > 0.9

    def test_invalid_dims(self, rng):
        with pytest.raises(ValueError):
            synthetic_classification(rng, 0, 8, 3)
        with pytest.raises(ValueError):
            synthetic_classification(rng, 10, 8, 1)

"""Routing tests: the 1024-entry table constraint and sparse routing."""

import pytest

from repro.hardware.routing import (
    RoutingError,
    RoutingTable,
    build_dense_routing,
    build_sparse_row_col_routing,
    dimension_ordered_path,
    path_links,
    resolve_route,
)
from repro.hardware.topology import Coordinate, multipod, slice_for_chips


class TestDimensionOrderedPath:
    def test_straight_line(self, small_mesh):
        path = dimension_ordered_path(small_mesh, Coordinate(0, 0), Coordinate(3, 0))
        assert path == [Coordinate(x, 0) for x in range(4)]

    def test_x_then_y(self, small_mesh):
        path = dimension_ordered_path(small_mesh, Coordinate(0, 0), Coordinate(2, 2))
        assert path[0] == Coordinate(0, 0)
        assert path[-1] == Coordinate(2, 2)
        # X moves complete before Y moves.
        xs = [c.x for c in path]
        assert xs == sorted(xs)

    def test_wrap_shortcut_taken(self, small_torus):
        path = dimension_ordered_path(small_torus, Coordinate(0, 0), Coordinate(3, 0))
        assert len(path) == 2  # one wrap hop, not three mesh hops

    def test_self_path(self, small_mesh):
        assert dimension_ordered_path(small_mesh, Coordinate(1, 1), Coordinate(1, 1)) == [
            Coordinate(1, 1)
        ]

    def test_path_links_adjacent(self, small_mesh):
        path = dimension_ordered_path(small_mesh, Coordinate(0, 0), Coordinate(2, 1))
        links = path_links(small_mesh, path)
        assert len(links) == len(path) - 1
        for link in links:
            assert link.dst in small_mesh.neighbors(link.src)

    def test_outside_mesh(self, small_mesh):
        with pytest.raises(ValueError):
            dimension_ordered_path(small_mesh, Coordinate(0, 0), Coordinate(9, 0))


class TestRoutingTable:
    def test_capacity_enforced(self):
        t = RoutingTable(Coordinate(0, 0), capacity=2)
        t.install(Coordinate(1, 0), Coordinate(1, 0))
        t.install(Coordinate(2, 0), Coordinate(1, 0))
        with pytest.raises(RoutingError, match="full"):
            t.install(Coordinate(3, 0), Coordinate(1, 0))

    def test_reinstall_does_not_consume_capacity(self):
        t = RoutingTable(Coordinate(0, 0), capacity=1)
        t.install(Coordinate(1, 0), Coordinate(1, 0))
        t.install(Coordinate(1, 0), Coordinate(1, 0))
        assert len(t) == 1

    def test_route_to_self_rejected(self):
        t = RoutingTable(Coordinate(0, 0), capacity=4)
        with pytest.raises(RoutingError):
            t.install(Coordinate(0, 0), Coordinate(1, 0))

    def test_missing_route(self):
        t = RoutingTable(Coordinate(0, 0), capacity=4)
        with pytest.raises(RoutingError, match="no route"):
            t.next_hop(Coordinate(1, 1))


class TestDenseRouting:
    def test_small_mesh_fits(self, small_mesh):
        tables = build_dense_routing(small_mesh)
        assert len(tables[Coordinate(0, 0)]) == 15

    def test_dense_routes_resolve_everywhere(self, small_torus):
        tables = build_dense_routing(small_torus)
        for dst in small_torus.chips():
            if dst == Coordinate(0, 0):
                continue
            path = resolve_route(tables, Coordinate(0, 0), dst)
            assert path[-1] == dst

    def test_multipod_exceeds_table(self):
        """The paper's constraint: 4096 destinations > 1024 entries."""
        with pytest.raises(RoutingError, match="full"):
            build_dense_routing(multipod(4))

    def test_single_pod_also_exceeds(self):
        # 1023 destinations fit exactly in 1024 entries -> no error.
        tables = build_dense_routing(slice_for_chips(1024))
        assert len(tables[Coordinate(0, 0)]) == 1023


class TestSparseRouting:
    def test_entry_count_on_multipod(self, the_multipod):
        # Only build tables for a subset via a small slice of same shape
        # logic; full multipod is large but fine once.
        tables = build_sparse_row_col_routing(slice_for_chips(256))
        entries = len(tables[Coordinate(0, 0)])
        assert entries == (16 - 1) + (16 - 1)

    def test_multipod_sparse_fits(self):
        """128 + 32 - 2 = 158 entries per chip on the full multipod."""
        mesh = multipod(4)
        # Verify arithmetic without building all 4096 tables.
        assert (mesh.x_size - 1) + (mesh.y_size - 1) < mesh.chip.routing_table_entries

    def test_row_column_routes_resolve(self, small_torus):
        tables = build_sparse_row_col_routing(small_torus)
        path = resolve_route(tables, Coordinate(0, 0), Coordinate(3, 0))
        assert path[-1] == Coordinate(3, 0)
        path = resolve_route(tables, Coordinate(0, 0), Coordinate(0, 2))
        assert path[-1] == Coordinate(0, 2)

    def test_off_axis_route_fails(self, small_torus):
        """Sparse routing only covers the row and column — by design."""
        tables = build_sparse_row_col_routing(small_torus)
        with pytest.raises(RoutingError, match="no route"):
            resolve_route(tables, Coordinate(0, 0), Coordinate(2, 2))

    def test_ring_traffic_needs_only_sparse(self, small_torus):
        """Ring collectives move along rows/columns: sparse is sufficient."""
        tables = build_sparse_row_col_routing(small_torus)
        for x in range(small_torus.x_size):
            src = Coordinate(x, 0)
            nxt = Coordinate(x, 1)
            assert resolve_route(tables, src, nxt)[-1] == nxt

"""Simulation-as-a-service tests.

Covers the typed rejection taxonomy (overloaded / rate-limited /
deadline-exceeded — never silent loss), the per-client token bucket and
per-class circuit breaker against a frozen clock, seed-deterministic
worker-crash injection with shared-RetryPolicy retries, terminal
failures dumping flight-recorder postmortems, the content-addressed
result cache (bit-identical hits, LRU eviction telemetry), journaled
kill-and-resume sweeps (zero recomputation, bit-identical payloads at
every interrupt point — property-tested), the service-to-cluster
adapter, and the load experiment's accounting invariant.
"""

from __future__ import annotations

import json
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.service import (
    CircuitBreaker,
    CrashPlan,
    DeadlineExceeded,
    JobFailed,
    Overloaded,
    RateLimited,
    ResultCache,
    ServiceConfig,
    ServiceError,
    SimJob,
    SimulationService,
    SweepInterrupted,
    SweepJournal,
    TokenBucket,
    canonical_spec,
    content_key,
    run_sweep,
    sweep_id,
)
from repro.service import service as service_mod
from repro.service.limits import CLOSED, HALF_OPEN, OPEN


@pytest.fixture(autouse=True)
def _fresh_telemetry():
    telemetry.reset()
    yield
    telemetry.reset()


class FakeClock:
    """Monotonic clock the test advances by hand."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def _service(clock=None, **overrides) -> SimulationService:
    cfg = ServiceConfig(**overrides)
    return SimulationService(
        cfg,
        clock=clock if clock is not None else FakeClock(),
        sleep=lambda s: None,
    )


class TestSpecAndContentKey:
    def test_canonical_spec_is_order_and_spelling_invariant(self):
        a = canonical_spec("chaos", {"steps": 10, "mesh_shape": (2, 2)})
        b = canonical_spec("chaos", {"mesh_shape": [2, 2], "steps": 10})
        assert a == b
        assert content_key("chaos", {"steps": 10, "mesh_shape": (2, 2)}) == \
            content_key("chaos", {"mesh_shape": [2, 2], "steps": 10})

    def test_name_and_deadline_do_not_enter_the_key(self):
        plain = SimJob("steptime", {"chips": 64})
        named = SimJob("steptime", {"chips": 64}, name="x", deadline_s=5.0)
        assert plain.content_key == named.content_key

    def test_unknown_kind_and_unserializable_params_rejected(self):
        with pytest.raises(ValueError, match="unknown job kind"):
            SimJob("bogus", {})
        with pytest.raises(TypeError, match="JSON"):
            SimJob("steptime", {"fn": object()})
        with pytest.raises(ValueError, match="deadline"):
            SimJob("steptime", {}, deadline_s=0.0)

    def test_label_defaults_to_kind_plus_key_prefix(self):
        job = SimJob("steptime", {"chips": 64})
        assert job.label == f"steptime:{job.content_key[:12]}"
        assert SimJob("steptime", {}, name="n").label == "n"


class TestTokenBucket:
    def test_burst_then_deny_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(2, 1.0, clock=clock)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(1.0)
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_tokens_cap_at_capacity(self):
        clock = FakeClock()
        bucket = TokenBucket(3, 10.0, clock=clock)
        clock.advance(100.0)
        assert bucket.tokens == 3.0


class TestCircuitBreaker:
    def _breaker(self, clock):
        return CircuitBreaker(failure_threshold=2, cooldown_s=1.0, clock=clock)

    def test_trips_after_consecutive_failures_only(self):
        br = self._breaker(FakeClock())
        br.record_failure()
        br.record_success()  # success resets the consecutive count
        br.record_failure()
        assert br.state == CLOSED
        br.record_failure()
        assert br.state == OPEN
        assert br.trips == 1
        assert not br.allow()

    def test_half_open_probe_closes_on_success(self):
        clock = FakeClock()
        br = self._breaker(clock)
        br.record_failure()
        br.record_failure()
        clock.advance(1.0)
        assert br.state == HALF_OPEN
        assert br.allow()        # the single probe
        assert not br.allow()    # everyone else still held
        br.record_success()
        assert br.state == CLOSED
        assert br.recoveries == 1

    def test_half_open_probe_failure_reopens_and_restarts_cooldown(self):
        clock = FakeClock()
        br = self._breaker(clock)
        br.record_failure()
        br.record_failure()
        clock.advance(1.0)
        assert br.allow()
        br.record_failure()
        assert br.state == OPEN
        assert br.trips == 2
        clock.advance(0.5)
        assert not br.allow()
        clock.advance(0.5)
        assert br.allow()


class TestResultCache:
    def test_lru_eviction_and_stats(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        assert cache.get("a") == {"v": 1}  # refreshes a
        cache.put("c", {"v": 3})           # evicts b (LRU)
        assert cache.get("b") is None
        assert cache.get("a") == {"v": 1}
        assert cache.get("c") == {"v": 3}
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["hits"] == 3 and stats["misses"] == 1

    def test_hits_are_isolated_copies(self):
        cache = ResultCache()
        cache.put("k", {"nested": {"v": 1}})
        first = cache.get("k")
        first["nested"]["v"] = 999
        assert cache.get("k") == {"nested": {"v": 1}}


class TestCrashPlan:
    def test_seeded_rate_is_deterministic(self):
        a = CrashPlan(seed=7, crash_rate=0.5)
        b = CrashPlan(seed=7, crash_rate=0.5)
        decisions = [(l, k) for l in ("x", "y", "z") for k in (1, 2, 3)]
        assert [a.should_crash(*d) for d in decisions] == \
            [b.should_crash(*d) for d in decisions]
        assert any(a.should_crash(*d) for d in decisions)

    def test_poisoned_and_pinned_crashes(self):
        plan = CrashPlan(poisoned=("dead",), crashes=(("once", 1),))
        assert plan.should_crash("dead", 1) and plan.should_crash("dead", 99)
        assert plan.should_crash("once", 1) and not plan.should_crash("once", 2)
        assert not CrashPlan().active and plan.active


class TestTypedShedding:
    def test_queue_overflow_sheds_typed_overloaded(self, monkeypatch):
        release, started = threading.Event(), threading.Event()

        def gate_execute(job, degraded=False):
            started.set()
            release.wait(10)
            return {"ran": job.params["i"]}

        monkeypatch.setattr(service_mod, "execute", gate_execute)
        svc = _service(concurrency=1, queue_depth=1, cache_entries=0)
        with svc:
            h1 = svc.submit(SimJob("steptime", {"i": 0}))
            assert started.wait(5)  # the worker now holds h1
            h2 = svc.submit(SimJob("steptime", {"i": 1}))  # fills the queue
            with pytest.raises(Overloaded) as exc_info:
                svc.submit(SimJob("steptime", {"i": 2}))
            assert exc_info.value.reason == "overloaded"
            release.set()
            assert h1.result()["ran"] == 0 and h2.result()["ran"] == 1
            snap = svc.snapshot()
        assert snap["rejected"] == {"overloaded": 1}
        # No silent loss: every submission is accounted.
        assert snap["submitted"] == 3 == snap["completed"] + snap["failed"] + 1

    def test_rate_limit_sheds_typed_and_refills(self, monkeypatch):
        monkeypatch.setattr(
            service_mod, "execute", lambda job, degraded=False: {"ok": 1}
        )
        clock = FakeClock()
        svc = _service(
            clock=clock, concurrency=1, queue_depth=16,
            rate_capacity=2, rate_refill_per_s=1.0, cache_entries=0,
        )
        with svc:
            svc.submit(SimJob("steptime", {"i": 0}), client="greedy").result()
            svc.submit(SimJob("steptime", {"i": 1}), client="greedy").result()
            with pytest.raises(RateLimited) as exc_info:
                svc.submit(SimJob("steptime", {"i": 2}), client="greedy")
            assert exc_info.value.reason == "rate_limited"
            # Another client has its own bucket.
            svc.submit(SimJob("steptime", {"i": 3}), client="other").result()
            # The greedy client recovers after the refill.
            clock.advance(1.0)
            svc.submit(SimJob("steptime", {"i": 4}), client="greedy").result()
            assert svc.stats.rejected == {"rate_limited": 1}

    def test_deadline_ages_out_in_queue(self, monkeypatch):
        clock = FakeClock()
        release, started = threading.Event(), threading.Event()

        def gate_execute(job, degraded=False):
            started.set()
            release.wait(10)
            return {}

        monkeypatch.setattr(service_mod, "execute", gate_execute)
        svc = _service(clock=clock, concurrency=1, queue_depth=8,
                       cache_entries=0)
        with svc:
            svc.submit(SimJob("steptime", {"i": 0}))
            assert started.wait(5)
            stale = svc.submit(SimJob("steptime", {"i": 1}, deadline_s=5.0))
            clock.advance(10.0)  # the queued job ages past its deadline
            release.set()
            reason, payload = stale.outcome(timeout=5.0)
        assert (reason, payload) == ("deadline_exceeded", None)

    def test_deadline_checked_after_execution_too(self, monkeypatch):
        clock = FakeClock()

        def slow_execute(job, degraded=False):
            clock.advance(10.0)
            return {"late": True}

        monkeypatch.setattr(service_mod, "execute", slow_execute)
        svc = _service(clock=clock, concurrency=1, queue_depth=8,
                       cache_entries=0)
        with svc:
            handle = svc.submit(SimJob("steptime", {}, deadline_s=5.0))
            assert handle.outcome(timeout=5.0)[0] == "deadline_exceeded"


class TestRetryAndPostmortem:
    def test_crash_retries_on_shared_policy_then_succeeds(self, monkeypatch):
        monkeypatch.setattr(
            service_mod, "execute", lambda job, degraded=False: {"ok": 1}
        )
        delays: list[float] = []
        cfg = ServiceConfig(
            concurrency=1, queue_depth=8, cache_entries=0,
            crashes=(("flaky", 1), ("flaky", 2)),
        )
        svc = SimulationService(cfg, clock=FakeClock(), sleep=delays.append)
        with svc:
            handle = svc.submit(SimJob("steptime", {}, name="flaky"))
            assert handle.result() == {"ok": 1}
            assert handle.attempts == 3
            assert svc.stats.worker_crashes == 2 and svc.stats.retries == 2
        # Backoff is the shared RetryPolicy's deterministic schedule.
        from repro.cluster.jobs import derive_subseed

        key = derive_subseed(cfg.seed, "service-retry", "flaky")
        policy = cfg.retry_policy
        assert delays == [
            policy.delay_after(1, key=key), policy.delay_after(2, key=key)
        ]

    def test_poisoned_job_fails_terminally_with_postmortem(self):
        svc = _service(concurrency=1, queue_depth=8, cache_entries=0,
                       poisoned=("dead",))
        with svc:
            handle = svc.submit(SimJob("steptime", {"chips": 64}, name="dead"))
            with pytest.raises(JobFailed) as exc_info:
                handle.result()
        assert exc_info.value.attempts == svc.config.retry_policy.max_attempts
        bundle = telemetry.flight_recorder.last_postmortem
        assert bundle is not None
        assert bundle["reason"] == "service.job_failed"
        kinds = {r["kind"] for r in bundle["records"]}
        assert "service" in kinds  # the crash timeline is in the bundle

    def test_deterministic_executor_error_fails_without_retry(self):
        svc = _service(concurrency=1, queue_depth=8, cache_entries=0)
        with svc:
            # 48 chips has no canonical slice: the spec itself is bad, so
            # retrying would burn budget for nothing.
            handle = svc.submit(SimJob("steptime", {"chips": 48}))
            with pytest.raises(JobFailed, match="no canonical slice"):
                handle.result()
            assert handle.attempts == 1


class TestBreakerIntegration:
    def _failing_execute(self, job, degraded=False):
        if job.params.get("fail") and not degraded:
            raise ValueError("injected executor failure")
        return {"mode": "accounting" if degraded else "full"}

    def test_trip_degrade_and_recover_without_restart(self, monkeypatch):
        monkeypatch.setattr(service_mod, "execute", self._failing_execute)
        clock = FakeClock()
        svc = _service(
            clock=clock, concurrency=1, queue_depth=8, cache_entries=0,
            breaker_threshold=2, breaker_cooldown_s=1.0,
        )
        with svc:
            for i in range(2):
                handle = svc.submit(SimJob("chaos", {"fail": True, "i": i}))
                assert handle.outcome(timeout=5.0)[0] == "failed"
            assert svc.breaker("chaos").state == OPEN
            # Open breaker: chaos degrades to accounting-only mode.
            handle = svc.submit(SimJob("chaos", {"i": 2}))
            assert handle.result() == {"mode": "accounting"}
            assert handle.degraded
            assert svc.stats.degraded == 1
            # After the cool-down the half-open probe runs full mode and
            # its success closes the circuit — same process, no restart.
            clock.advance(1.0)
            handle = svc.submit(SimJob("chaos", {"i": 3}))
            assert handle.result() == {"mode": "full"}
            assert not handle.degraded
            br = svc.breaker("chaos")
            assert br.state == CLOSED and br.trips == 1 and br.recoveries == 1

    def test_open_breaker_sheds_non_degradable_kinds(self, monkeypatch):
        monkeypatch.setattr(service_mod, "execute", self._failing_execute)
        svc = _service(concurrency=1, queue_depth=8, cache_entries=0,
                       breaker_threshold=2, breaker_cooldown_s=100.0)
        with svc:
            for i in range(2):
                svc.submit(
                    SimJob("steptime", {"fail": True, "i": i})
                ).outcome(timeout=5.0)
            handle = svc.submit(SimJob("steptime", {"i": 2}))
            reason, _ = handle.outcome(timeout=5.0)
            assert reason == "overloaded"

    def test_degraded_payloads_are_not_cached(self, monkeypatch):
        monkeypatch.setattr(service_mod, "execute", self._failing_execute)
        clock = FakeClock()
        svc = _service(clock=clock, concurrency=1, queue_depth=8,
                       breaker_threshold=1, breaker_cooldown_s=1.0)
        with svc:
            svc.submit(SimJob("chaos", {"fail": True})).outcome(timeout=5.0)
            degraded = svc.submit(SimJob("chaos", {"x": 1}))
            assert degraded.result() == {"mode": "accounting"}
            assert svc.cache.get(degraded.job.content_key) is None
            # Once recovered, the full-mode result of the same spec is
            # cached — an accounting payload never shadows it.
            clock.advance(1.0)
            full = svc.submit(SimJob("chaos", {"x": 1}))
            assert full.result() == {"mode": "full"}
            assert svc.cache.get(full.job.content_key) == {"mode": "full"}


class TestContentAddressedCache:
    def test_identical_specs_hit_bit_identically(self):
        svc = _service(concurrency=2, queue_depth=8)
        with svc:
            first = svc.submit(
                SimJob("chaos", {"mesh_shape": (2, 2), "steps": 8, "seed": 3})
            )
            payload_a = first.result(timeout=30.0)
            # Different name, list spelling, different param order: same key.
            second = svc.submit(
                SimJob("chaos", {"seed": 3, "steps": 8, "mesh_shape": [2, 2]},
                       name="renamed")
            )
            payload_b = second.result(timeout=30.0)
        assert not first.cached and second.cached
        assert payload_a == payload_b
        assert json.dumps(payload_a, sort_keys=True) == \
            json.dumps(payload_b, sort_keys=True)

    def test_cache_telemetry_counters_flow(self, monkeypatch):
        monkeypatch.setattr(
            service_mod, "execute", lambda job, degraded=False: {"ok": 1}
        )
        svc = _service(concurrency=1, queue_depth=8, cache_entries=1)
        with svc:
            svc.submit(SimJob("steptime", {"i": 0})).result()
            svc.submit(SimJob("steptime", {"i": 0})).result()  # hit
            svc.submit(SimJob("steptime", {"i": 1})).result()  # evicts i=0
        snap = telemetry.metrics.snapshot()
        assert snap["service_cache_hits"]["values"][0]["value"] == 1
        assert snap["service_cache_evictions"]["values"][0]["value"] == 1
        assert snap["service_completed"]["values"][0]["value"] == 3


def _sweep_jobs(n: int = 5) -> list[SimJob]:
    return [
        SimJob("steptime", {"chips": 256, "global_batch": 1024 * (i + 1)})
        for i in range(n)
    ]


def _fresh_sweep_service() -> SimulationService:
    # Real clock (latencies irrelevant here), cache off so the journal is
    # the only thing that can prevent recomputation.
    return SimulationService(
        ServiceConfig(concurrency=2, queue_depth=16, cache_entries=0)
    )


class TestResumableSweep:
    @settings(deadline=None, max_examples=8)
    @given(interrupt_after=st.integers(min_value=1, max_value=4))
    def test_kill_and_resume_is_bit_identical_at_every_point(
        self, tmp_path_factory, interrupt_after
    ):
        tmp = tmp_path_factory.mktemp("sweep")
        jobs = _sweep_jobs(5)
        with _fresh_sweep_service() as svc:
            with pytest.raises(SweepInterrupted):
                run_sweep(svc, jobs, tmp / "journal.jsonl",
                          interrupt_after=interrupt_after)
        # A new service (fresh process stand-in): only the tail re-runs.
        with _fresh_sweep_service() as svc:
            resumed = run_sweep(svc, jobs, tmp / "journal.jsonl")
        assert resumed.reused == interrupt_after
        assert resumed.executed == len(jobs) - interrupt_after
        with _fresh_sweep_service() as svc:
            uninterrupted = run_sweep(svc, jobs, tmp / "fresh.jsonl")
        assert resumed.payloads == uninterrupted.payloads
        assert json.dumps(resumed.payloads) == json.dumps(
            uninterrupted.payloads
        )

    def test_completed_journal_reruns_with_zero_executions(self, tmp_path):
        jobs = _sweep_jobs(3)
        with _fresh_sweep_service() as svc:
            first = run_sweep(svc, jobs, tmp_path / "j.jsonl")
            again = run_sweep(svc, jobs, tmp_path / "j.jsonl")
        assert first.executed == 3
        assert again.executed == 0 and again.reused == 3
        assert again.payloads == first.payloads

    def test_journal_refuses_a_different_job_set(self, tmp_path):
        with _fresh_sweep_service() as svc:
            run_sweep(svc, _sweep_jobs(2), tmp_path / "j.jsonl")
            with pytest.raises(ServiceError, match="refusing to resume"):
                run_sweep(svc, _sweep_jobs(3), tmp_path / "j.jsonl")

    def test_torn_trailing_line_is_ignored_and_rerun(self, tmp_path):
        jobs = _sweep_jobs(3)
        path = tmp_path / "j.jsonl"
        with _fresh_sweep_service() as svc:
            run_sweep(svc, jobs, path)
        lines = path.read_text().splitlines()
        # Simulate a kill mid-append: the last record is half-written.
        path.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][:10])
        journal = SweepJournal(path)
        entries = journal.load(sweep_id(jobs))
        assert len(entries) == 2
        with _fresh_sweep_service() as svc:
            resumed = run_sweep(svc, jobs, path)
        assert resumed.reused == 2 and resumed.executed == 1


class TestClusterAdapter:
    def test_service_feeds_the_cluster_scheduler_end_to_end(self):
        svc = _service(concurrency=1, queue_depth=4, cache_entries=0)
        tenants = [
            {"name": "batch", "slice_shape": [2, 2], "target_steps": 10,
             "state_bytes": int(1e9)},
            {"name": "hazard", "slice_shape": [2, 2], "target_steps": 10,
             "state_bytes": int(1e9), "priority": 1,
             "checkpoint_policy": {"policy": "risk_adaptive",
                                   "hazard_per_second": 0.5,
                                   "checkpoint_seconds": 1.0}},
        ]
        with svc:
            handle = svc.submit(SimJob("cluster", {
                "tenants": tenants, "mesh_shape": [4, 4],
                "max_ticks": 500, "seed": 11,
            }))
            payload = handle.result(timeout=60.0)
        assert payload["completed"] == 2
        assert set(payload["tenants"]) == {"batch", "hazard"}
        for report in payload["tenants"].values():
            assert "goodput" in report and "steps_executed" in report

    def test_adapter_validates_policy_kind(self):
        from repro.service.executors import to_cluster_spec

        with pytest.raises(ValueError, match="unknown checkpoint policy"):
            to_cluster_spec({
                "name": "x", "checkpoint_policy": {"policy": "bogus"},
            })


class TestLoadExperiment:
    def test_accounting_invariant_and_typed_shedding(self):
        from repro.experiments import service_load

        table = service_load.run()  # raises internally on silent loss
        by_scenario = {}
        for row in table.rows:
            by_scenario.setdefault(row[0], []).append(row)
        idx = {h: i for i, h in enumerate(table.headers)}
        for row in by_scenario["scan"]:
            assert row[idx["ok"]] == service_load.BURST
        # Past the knee the excess is shed with the *matching* typed
        # rejection, and ok + shed always accounts for the whole burst.
        (overload,) = by_scenario["overload"]
        assert overload[idx["ok"]] + overload[idx["overl"]] == \
            service_load.BURST
        assert overload[idx["overl"]] > 0
        (ratelimit,) = by_scenario["ratelimit"]
        assert ratelimit[idx["rate"]] == service_load.BURST - 8
        (deadline,) = by_scenario["deadline"]
        assert deadline[idx["ok"]] + deadline[idx["ddl"]] == \
            service_load.BURST

"""bfloat16 emulation tests, including hypothesis properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numerics.bfloat16 import (
    BF16_EPS,
    bf16_add,
    bf16_sum,
    is_bfloat16_representable,
    round_to_bfloat16,
)

finite_floats = st.floats(
    min_value=-(2.0 ** 60), max_value=2.0 ** 60, width=32, allow_subnormal=False,
)


class TestRounding:
    def test_exact_values_unchanged(self):
        for v in (0.0, 1.0, -2.0, 0.5, 256.0, 1.5):
            assert round_to_bfloat16(v) == v

    def test_relative_error_bound(self):
        x = np.float32(1.001)
        r = float(round_to_bfloat16(x))
        assert abs(r - float(x)) <= BF16_EPS * abs(float(x))

    def test_known_rounding(self):
        # 1 + 2^-8 rounds to 1.0 (ties-to-even on the 7-bit mantissa).
        assert float(round_to_bfloat16(np.float32(1.0 + 2**-8))) == 1.0
        # 1 + 3*2^-8 is a tie between 1 + 2^-7 and 1 + 2^-6; ties-to-even
        # picks the even mantissa, 1 + 2^-6.
        assert float(round_to_bfloat16(np.float32(1.0 + 3 * 2**-8))) == 1.0 + 2**-6

    def test_nan_preserved(self):
        assert np.isnan(round_to_bfloat16(np.float32("nan")))

    def test_inf_preserved(self):
        assert np.isinf(round_to_bfloat16(np.float32("inf")))

    def test_array_shape_preserved(self, rng):
        x = rng.standard_normal((3, 5)).astype(np.float32)
        assert round_to_bfloat16(x).shape == (3, 5)

    def test_result_is_representable(self, rng):
        x = rng.standard_normal(1000).astype(np.float32)
        assert is_bfloat16_representable(round_to_bfloat16(x)).all()

    @given(finite_floats)
    @settings(max_examples=200)
    def test_idempotent(self, v):
        once = round_to_bfloat16(np.float32(v))
        twice = round_to_bfloat16(once)
        assert np.array_equal(once, twice, equal_nan=True)

    @given(finite_floats)
    @settings(max_examples=200)
    def test_error_within_eps(self, v):
        r = float(round_to_bfloat16(np.float32(v)))
        if np.isinf(r):  # overflow saturation near float32 max
            return
        assert abs(r - v) <= BF16_EPS * abs(v) + 1e-45

    @given(finite_floats)
    @settings(max_examples=200)
    def test_monotone_sign(self, v):
        r = float(round_to_bfloat16(np.float32(v)))
        if v > 0:
            assert r >= 0
        if v < 0:
            assert r <= 0


class TestBf16Arithmetic:
    def test_add_quantizes(self):
        out = bf16_add(np.float32(1.0), np.float32(2.0 ** -9))
        # The tiny addend is lost after rounding the sum.
        assert float(out) == 1.0

    def test_sum_matches_serial_adds(self, rng):
        arrays = [rng.standard_normal(16).astype(np.float32) for _ in range(5)]
        acc = round_to_bfloat16(arrays[0])
        for a in arrays[1:]:
            acc = bf16_add(acc, a)
        assert np.array_equal(bf16_sum(arrays), acc)

    def test_sum_close_to_exact(self, rng):
        arrays = [rng.standard_normal(64).astype(np.float32) for _ in range(8)]
        exact = np.sum(arrays, axis=0, dtype=np.float64)
        approx = bf16_sum(arrays).astype(np.float64)
        scale = np.sum(np.abs(arrays), axis=0)
        assert np.all(np.abs(approx - exact) <= 8 * BF16_EPS * scale + 1e-6)

    def test_empty_sum_rejected(self):
        with pytest.raises(ValueError):
            bf16_sum([])

    def test_representable_check(self):
        assert is_bfloat16_representable(1.0)
        assert not is_bfloat16_representable(np.float32(1.0 + 2**-9))

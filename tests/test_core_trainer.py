"""Unified Trainer API: config validation, factory dispatch, StepResult.

The headline property lives here too: the bucketed-overlap execution mode
is **bit-identical** to the eager mode at the same bucket count — overlap
only changes the modeled timeline and telemetry, never the arithmetic.
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import STRATEGIES, StepResult, Trainer, TrainerConfig, make_trainer
from repro.core.data_parallel import DataParallelTrainer, SingleDeviceTrainer
from repro.core.model_parallel import HybridParallelTrainer
from repro.core.weight_update_sharding import WeightUpdateShardedTrainer
from repro.models.mlp import MLP, synthetic_classification
from repro.optim import LAMB, SGDMomentum


def _workload(seed=0, batch=64, din=12, dout=4):
    rng = np.random.default_rng(seed)
    return synthetic_classification(rng, batch, din, dout)


def _config(**overrides):
    defaults = dict(model=MLP([12, 24, 4]), optimizer=SGDMomentum(0.05), seed=0)
    defaults.update(overrides)
    return TrainerConfig(**defaults)


class TestTrainerConfig:
    def test_defaults(self):
        c = _config()
        assert c.strategy == "data_parallel"
        assert c.num_replicas == 1
        assert c.num_buckets == 1 and not c.overlap

    def test_num_replicas_is_mesh_product(self):
        assert _config(mesh_shape=(4, 2)).num_replicas == 8

    def test_with_returns_modified_copy(self):
        base = _config()
        changed = base.with_(strategy="wus", mesh_shape=(8, 1))
        assert changed.strategy == "wus" and changed.num_replicas == 8
        assert base.strategy == "data_parallel"

    @pytest.mark.parametrize(
        "overrides, match",
        [
            (dict(strategy="pipeline"), "unknown strategy"),
            (dict(mesh_shape=(0, 2)), "mesh_shape"),
            (dict(num_buckets=0), "num_buckets"),
            (dict(mp_size=0), "mp_size"),
            (dict(strategy="single", mesh_shape=(2, 1)), "1x1"),
            (dict(strategy="hybrid", overlap=True), "bucketed overlap"),
            (dict(strategy="single", num_buckets=2), "bucketed overlap"),
            (dict(strategy="wus", fused=False, num_buckets=2), "unfused WUS"),
        ],
    )
    def test_validation(self, overrides, match):
        with pytest.raises(ValueError, match=match):
            _config(**overrides)


class TestMakeTrainer:
    @pytest.mark.parametrize(
        "overrides, cls",
        [
            (dict(strategy="single"), SingleDeviceTrainer),
            (dict(strategy="data_parallel", mesh_shape=(4, 2)), DataParallelTrainer),
            (dict(strategy="wus", mesh_shape=(8, 1)), WeightUpdateShardedTrainer),
            (dict(strategy="hybrid", mesh_shape=(2, 1), mp_size=2), HybridParallelTrainer),
        ],
    )
    def test_dispatch(self, overrides, cls):
        trainer = make_trainer(_config(**overrides))
        assert type(trainer) is cls
        assert isinstance(trainer, Trainer)

    def test_factory_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            for strategy in STRATEGIES:
                make_trainer(_config(strategy=strategy, mp_size=2))

    @pytest.mark.parametrize(
        "build",
        [
            lambda m: SingleDeviceTrainer(m, SGDMomentum(0.05)),
            lambda m: DataParallelTrainer(m, SGDMomentum(0.05), dp_x=2),
            lambda m: WeightUpdateShardedTrainer(m, SGDMomentum(0.05), num_replicas=2),
            lambda m: HybridParallelTrainer(m, SGDMomentum(0.05), dp_size=2, mp_size=2),
        ],
    )
    def test_direct_construction_warns_once(self, build):
        with pytest.warns(DeprecationWarning, match="make_trainer") as record:
            build(MLP([12, 24, 4]))
        assert len(record) == 1

    def test_seed_returns_initialized_trainer(self):
        trainer = make_trainer(_config(seed=3))
        assert trainer.params  # init() already ran
        x, y = _workload()
        assert np.isfinite(float(trainer.step(x, y)))

    def test_no_seed_returns_uninitialized_trainer(self):
        trainer = make_trainer(_config(seed=None))
        assert not getattr(trainer, "params", None)

    def test_same_seed_same_losses(self):
        x, y = _workload()
        losses = []
        for _ in range(2):
            trainer = make_trainer(_config(strategy="wus", mesh_shape=(4, 1)))
            losses.append([float(trainer.step(x, y)) for _ in range(3)])
        assert losses[0] == losses[1]


class TestStepResult:
    def test_is_the_loss(self):
        r = StepResult(0.25, {"forward_backward": 1.0, "update": 0.5}, 128.0, 3)
        assert isinstance(r, float)
        assert float(r) == 0.25 and r.loss == 0.25
        assert r + 1 == 1.25  # arithmetic still works
        assert f"{r:.2f}" == "0.25"

    def test_accounting_fields(self):
        r = StepResult(0.25, {"a": 1.0, "b": 0.5}, 128.0, 3)
        assert r.total_seconds == pytest.approx(1.5)
        assert r.bytes_moved == 128.0
        assert r.step_index == 3

    def test_defaults_empty(self):
        r = StepResult(1.0)
        assert r.phase_seconds == {} and r.bytes_moved == 0.0

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(strategy="single"),
            dict(strategy="data_parallel", mesh_shape=(2, 2), num_buckets=2),
            dict(strategy="wus", mesh_shape=(4, 1), num_buckets=2, overlap=True),
            dict(strategy="hybrid", mesh_shape=(2, 1), mp_size=2),
        ],
    )
    def test_every_trainer_returns_step_result(self, overrides):
        trainer = make_trainer(_config(**overrides))
        x, y = _workload()
        result = trainer.step(x, y)
        assert isinstance(result, StepResult)
        assert "forward_backward" in result.phase_seconds
        assert all(v >= 0.0 for v in result.phase_seconds.values())
        if overrides["strategy"] != "single":
            assert result.bytes_moved > 0.0


class TestOverlapBitIdentity:
    """Overlap mode must not perturb a single bit of the training math."""

    @given(
        strategy=st.sampled_from(["data_parallel", "wus"]),
        mesh_x=st.sampled_from([2, 4]),
        num_buckets=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_overlap_matches_eager_bitwise(self, strategy, mesh_x, num_buckets, seed):
        x, y = _workload(seed=seed)
        base = TrainerConfig(
            model=MLP([12, 24, 4]),
            optimizer=LAMB(0.02),
            strategy=strategy,
            mesh_shape=(mesh_x, 1),
            num_buckets=num_buckets,
            seed=seed,
        )
        eager = make_trainer(base)
        overlapped = make_trainer(base.with_(overlap=True))
        for _ in range(3):
            eager_loss = eager.step(x, y)
            overlap_loss = overlapped.step(x, y)
            assert float(eager_loss) == float(overlap_loss)
        assert set(eager.params) == set(overlapped.params)
        for name in eager.params:
            assert np.array_equal(eager.params[name], overlapped.params[name])
        assert eager.last_overlap is None
        assert overlapped.last_overlap is not None
        assert overlapped.last_overlap.num_buckets == min(
            num_buckets, len(eager.params)
        )

    def test_overlap_telemetry_attached(self):
        trainer = make_trainer(
            _config(strategy="data_parallel", mesh_shape=(4, 1),
                    num_buckets=3, overlap=True)
        )
        x, y = _workload()
        trainer.step(x, y)
        overlap = trainer.last_overlap
        assert overlap.step_seconds <= overlap.serial_step_seconds + 1e-12
        assert 0.0 <= overlap.overlap_efficiency <= 1.0 + 1e-9
        assert overlap.comm_seconds > 0.0

"""Ring construction tests (Figure 4's three ring families)."""

import pytest

from repro.hardware.rings import (
    Ring,
    all_x_lines,
    all_y_rings,
    model_group,
    model_peer_ring,
    x_line,
    y_ring,
)
from repro.hardware.topology import Coordinate, TorusMesh


class TestRing:
    def test_needs_two_members(self):
        with pytest.raises(ValueError):
            Ring((Coordinate(0, 0),), closed=True)

    def test_distinct_members(self):
        with pytest.raises(ValueError):
            Ring((Coordinate(0, 0), Coordinate(0, 0)), closed=True)

    def test_segments_closed_vs_open(self, small_torus, small_mesh):
        closed = y_ring(small_torus, 0)
        assert len(closed.segments(small_torus)) == 4
        open_ = y_ring(small_mesh, 0)
        assert len(open_.segments(small_mesh)) == 3


class TestYRings:
    def test_y_ring_membership(self, the_multipod):
        r = y_ring(the_multipod, 5)
        assert r.size == 32
        assert r.closed  # Y wraps on the multipod
        assert all(c.x == 5 for c in r.members)

    def test_all_y_rings_disjoint_links(self, small_torus):
        rings = all_y_rings(small_torus)
        seen = set()
        for ring in rings:
            for link in ring.all_links(small_torus):
                key = (link.src, link.dst)
                assert key not in seen
                seen.add(key)

    def test_column_out_of_range(self, small_torus):
        with pytest.raises(ValueError):
            y_ring(small_torus, 99)


class TestXLines:
    def test_x_line_open_on_multipod(self, the_multipod):
        r = x_line(the_multipod, 0)
        assert r.size == 128
        assert not r.closed

    def test_x_line_closed_on_single_pod(self, pod):
        assert x_line(pod, 0).closed

    def test_all_x_lines_count(self, the_multipod):
        assert len(all_x_lines(the_multipod)) == 32


class TestModelPeerRings:
    def test_members_hop_over_peers(self, the_multipod):
        r = model_peer_ring(the_multipod, y=3, mp_size=4, peer_id=1)
        assert r.size == 128 // 4
        assert r.hop_stride == 4
        assert [c.x for c in r.members] == list(range(1, 128, 4))

    def test_segments_span_mp_links(self, pod):
        r = model_peer_ring(pod, y=0, mp_size=4, peer_id=0)
        segments = r.segments(pod)
        for seg in segments:
            assert len(seg) == 4  # hop over 3 model-parallel neighbors

    def test_peer_rings_cover_all_columns(self, pod):
        members = set()
        for p in range(4):
            members.update(model_peer_ring(pod, 0, 4, p).members)
        assert len(members) == pod.x_size

    def test_invalid_peer_id(self, pod):
        with pytest.raises(ValueError):
            model_peer_ring(pod, 0, 4, 4)

    def test_indivisible_mp_size(self, pod):
        with pytest.raises(ValueError):
            model_peer_ring(pod, 0, 5, 0)

    def test_needs_two_replicas(self):
        m = TorusMesh(4, 4)
        with pytest.raises(ValueError, match="2 replicas"):
            model_peer_ring(m, 0, 4, 0)


class TestModelGroup:
    def test_group_alignment(self, pod):
        g = model_group(pod, Coordinate(5, 7), 4)
        assert [c.x for c in g] == [4, 5, 6, 7]
        assert all(c.y == 7 for c in g)

    def test_group_of_one(self, pod):
        assert model_group(pod, Coordinate(3, 3), 1) == (Coordinate(3, 3),)

    def test_indivisible(self, pod):
        with pytest.raises(ValueError):
            model_group(pod, Coordinate(0, 0), 5)

"""Tensor IR tests: shapes, flops, builders."""

import pytest

from repro.spmd.ir import Graph, ShapeError


class TestBuilders:
    def test_conv2d_shapes(self):
        g = Graph()
        x = g.input((1, 32, 32, 3))
        w = g.parameter((3, 3, 3, 16))
        y = g.conv2d(x, w)
        assert g.node(y).shape == (1, 32, 32, 16)

    def test_conv2d_stride(self):
        g = Graph()
        x = g.input((1, 32, 32, 3))
        w = g.parameter((7, 7, 3, 64))
        y = g.conv2d(x, w, stride=2)
        assert g.node(y).shape == (1, 16, 16, 64)

    def test_conv2d_channel_mismatch(self):
        g = Graph()
        x = g.input((1, 8, 8, 3))
        w = g.parameter((3, 3, 4, 16))
        with pytest.raises(ShapeError):
            g.conv2d(x, w)

    def test_matmul_shapes(self):
        g = Graph()
        a = g.input((8, 16))
        b = g.parameter((16, 4))
        y = g.matmul(a, b)
        assert g.node(y).shape == (8, 4)

    def test_matmul_mismatch(self):
        g = Graph()
        a = g.input((8, 16))
        b = g.parameter((15, 4))
        with pytest.raises(ShapeError):
            g.matmul(a, b)

    def test_add_shape_check(self):
        g = Graph()
        a = g.input((4, 4))
        b = g.input((4, 5))
        with pytest.raises(ShapeError):
            g.add(a, b)

    def test_topk(self):
        g = Graph()
        x = g.input((1, 100))
        y = g.topk(x, 10)
        assert g.node(y).shape == (1, 10)
        with pytest.raises(ShapeError):
            g.topk(x, 200)

    def test_gather(self):
        g = Graph()
        x = g.input((1, 50, 84, 256))
        y = g.gather(x, 1000, 7 * 7 * 256)
        assert g.node(y).shape == (1000, 7 * 7 * 256)

    def test_unknown_input_id(self):
        g = Graph()
        with pytest.raises(ShapeError):
            g.elementwise(99)

    def test_reduce_scalar(self):
        g = Graph()
        x = g.input((4, 4))
        y = g.reduce(x)
        assert g.node(y).shape == ()
        assert g.node(y).elements == 1


class TestFlops:
    def test_matmul_flops(self):
        g = Graph()
        a = g.input((8, 16))
        b = g.parameter((16, 4))
        y = g.matmul(a, b)
        assert g.node_flops(g.node(y)) == 2 * 8 * 16 * 4

    def test_conv_flops(self):
        g = Graph()
        x = g.input((1, 10, 10, 3))
        w = g.parameter((3, 3, 3, 8))
        y = g.conv2d(x, w)
        assert g.node_flops(g.node(y)) == 2 * 1 * 10 * 10 * 8 * 9 * 3

    def test_inputs_free(self):
        g = Graph()
        x = g.input((100, 100))
        assert g.node_flops(g.node(x)) == 0.0

    def test_total_flops_accumulates(self):
        g = Graph()
        a = g.input((8, 16))
        b = g.parameter((16, 4))
        g.matmul(a, b)
        g.matmul(a, b)
        assert g.total_flops() == 2 * (2 * 8 * 16 * 4)

    def test_output_bytes(self):
        g = Graph()
        x = g.input((4, 4))
        assert g.node(x).output_bytes(2) == 32

"""HBM memory-model tests: the paper's batch caps are memory-consistent."""

import pytest

from repro.core.memory import MemoryModel
from repro.core.planner import PLANNER_RULES, plan_parallelism
from repro.core.strategy import ParallelismConfig
from repro.experiments.calibration import spec_for
from repro.models import bert_large_spec, maskrcnn_spec, resnet50_spec


class TestFootprint:
    def test_components_sum(self):
        spec = resnet50_spec()
        cfg = ParallelismConfig(num_chips=256, global_batch=65536)
        fp = MemoryModel(spec, cfg).footprint()
        assert fp.total == pytest.approx(
            fp.weights + fp.gradients + fp.optimizer_slots + fp.activations
        )

    def test_wus_shrinks_slots(self):
        spec = bert_large_spec()
        base = ParallelismConfig(num_chips=512, global_batch=8192)
        with_wus = MemoryModel(spec, base).footprint()
        without = MemoryModel(
            spec, base.with_(use_weight_update_sharding=False)
        ).footprint()
        assert without.optimizer_slots == pytest.approx(
            with_wus.optimizer_slots * base.num_replicas
        )

    def test_mp_divides_weights(self):
        spec = spec_for("transformer")
        dp = ParallelismConfig(num_chips=1024, global_batch=2048)
        mp = ParallelismConfig(num_chips=1024, global_batch=2048, mp_cores=4)
        assert MemoryModel(spec, mp).footprint().weights == pytest.approx(
            MemoryModel(spec, dp).footprint().weights / 4
        )


class TestPaperCapsAreMemoryConsistent:
    @pytest.mark.parametrize("name", sorted(PLANNER_RULES))
    @pytest.mark.parametrize("chips", [16, 256, 4096])
    def test_planned_configs_fit(self, name, chips):
        """Every configuration the planner emits must fit HBM."""
        spec = spec_for(name)
        plan = plan_parallelism(spec, chips)
        model = MemoryModel(spec, plan.config)
        assert model.fits(), (
            f"{name}@{chips}: {model.footprint().total / 2**30:.1f} GiB "
            f"> {model.per_core_budget / 2**30:.1f} GiB"
        )

    def test_resnet_cap_near_memory_limit(self):
        """256/chip is the right order: 4x that would blow the budget."""
        spec = resnet50_spec()
        at_cap = ParallelismConfig(num_chips=16, global_batch=256 * 16)
        assert MemoryModel(spec, at_cap).fits()
        over = ParallelismConfig(num_chips=16, global_batch=1024 * 16)
        assert not MemoryModel(spec, over).fits()

    def test_bert_cap_near_memory_limit(self):
        spec = bert_large_spec()
        at_cap = ParallelismConfig(num_chips=16, global_batch=48 * 16)
        assert MemoryModel(spec, at_cap).fits()
        over = ParallelismConfig(num_chips=16, global_batch=256 * 16)
        assert not MemoryModel(spec, over).fits()

    def test_maskrcnn_memory_envelope(self):
        """MaskRCNN's planner cap (4/chip) is convergence-driven, not
        memory-driven — but its 800x1333 activations still bound the
        per-core batch to a few tens of examples."""
        spec = maskrcnn_spec()
        cfg = ParallelismConfig(num_chips=64, global_batch=256)
        assert MemoryModel(spec, cfg).fits()
        big = ParallelismConfig(num_chips=64, global_batch=64 * 128)  # 64/core
        assert not MemoryModel(spec, big).fits()

    def test_max_batch_per_core_consistent_with_fits(self):
        spec = resnet50_spec()
        cfg = ParallelismConfig(num_chips=16, global_batch=4096)
        model = MemoryModel(spec, cfg)
        cap = model.max_batch_per_core()
        assert cap >= cfg.batch_per_core
        over = ParallelismConfig(
            num_chips=16, global_batch=int((cap + 8) * 32)
        )
        assert not MemoryModel(spec, over).fits()

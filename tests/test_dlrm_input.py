"""DLRM input-pipeline optimization tests (§3.5 / §4.6)."""

import pytest

from repro.input_pipeline.dlrm_input import (
    DlrmInputConfig,
    dlrm_input_throughput,
    is_input_bound,
)


class TestThroughput:
    def test_batch_parsing_beats_per_sample(self):
        naive = dlrm_input_throughput(DlrmInputConfig(False, True, True))
        batched = dlrm_input_throughput(DlrmInputConfig(True, True, True))
        assert batched > naive

    def test_stacking_beats_per_feature(self):
        per_feature = dlrm_input_throughput(DlrmInputConfig(True, False, True))
        stacked = dlrm_input_throughput(DlrmInputConfig(True, True, True))
        assert stacked > 2 * per_feature

    def test_pre_serialization_helps(self):
        online = dlrm_input_throughput(DlrmInputConfig(True, True, False))
        pre = dlrm_input_throughput(DlrmInputConfig(True, True, True))
        assert pre >= online

    def test_fully_optimized_feeds_device(self):
        assert not is_input_bound(
            DlrmInputConfig(True, True, True), device_step_seconds=1.4e-3
        )

    def test_naive_is_input_bound(self):
        assert is_input_bound(
            DlrmInputConfig(False, False, False), device_step_seconds=1.4e-3
        )

    def test_labels(self):
        assert "batch-parse" in DlrmInputConfig(True, True, True).label
        assert "per-feature" in DlrmInputConfig(True, False, True).label

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            dlrm_input_throughput(DlrmInputConfig(), batch_per_host=0)

"""Data-parallel training equivalence tests.

The central invariant of Section 3: parallelizing the computation must not
change the math.  Data-parallel training with real ring / 2-D hierarchical
collectives must match single-device training on the concatenated batch to
machine precision (float64).
"""

import numpy as np
import pytest

from repro.core.data_parallel import DataParallelTrainer, SingleDeviceTrainer
from repro.models.mlp import MLP, synthetic_classification
from repro.optim import Adam, LAMB, LARS, SGDMomentum

OPTIMIZERS = [
    ("sgd", lambda: SGDMomentum(0.05)),
    ("lars", lambda: LARS(0.5)),
    ("lamb", lambda: LAMB(0.01)),
    ("adam", lambda: Adam(0.01)),
]


def _data(seed=0, n=64, features=12, classes=4):
    rng = np.random.default_rng(seed)
    return synthetic_classification(rng, n, features, classes)


def _run(trainer, x, y, steps=4, seed=7):
    trainer.init(np.random.default_rng(seed))
    losses = [trainer.step(x, y) for _ in range(steps)]
    return trainer, losses


def _max_param_diff(p1, p2):
    return max(
        float(np.max(np.abs(np.asarray(p1[k]) - np.asarray(p2[k])))) for k in p1
    )


class TestEquivalence:
    @pytest.mark.parametrize("name,make_opt", OPTIMIZERS)
    def test_dp_matches_single_device(self, name, make_opt):
        model = MLP([12, 16, 8, 4])
        x, y = _data()
        ref, ref_losses = _run(SingleDeviceTrainer(model, make_opt()), x, y)
        dp, dp_losses = _run(DataParallelTrainer(model, make_opt(), dp_x=4), x, y)
        assert _max_param_diff(ref.params, dp.params) < 1e-12
        assert dp_losses == pytest.approx(ref_losses, rel=1e-12)

    @pytest.mark.parametrize("name,make_opt", OPTIMIZERS)
    def test_2d_mesh_matches_single_device(self, name, make_opt):
        model = MLP([12, 16, 4])
        x, y = _data(n=48)
        ref, _ = _run(SingleDeviceTrainer(model, make_opt()), x, y)
        dp, _ = _run(DataParallelTrainer(model, make_opt(), dp_x=2, dp_y=3), x, y)
        assert _max_param_diff(ref.params, dp.params) < 1e-12

    def test_replica_counts_agree(self):
        model = MLP([12, 16, 4])
        x, y = _data()
        results = {}
        for replicas in (1, 2, 4, 8):
            dp, _ = _run(
                DataParallelTrainer(model, SGDMomentum(0.05), dp_x=replicas), x, y
            )
            results[replicas] = dp.params
        base = results[1]
        for replicas, params in results.items():
            assert _max_param_diff(base, params) < 1e-12

    def test_bf16_gradients_close_but_not_exact(self):
        model = MLP([12, 16, 4])
        x, y = _data()
        ref, _ = _run(SingleDeviceTrainer(model, SGDMomentum(0.05)), x, y)
        dp, _ = _run(
            DataParallelTrainer(model, SGDMomentum(0.05), dp_x=4,
                                grad_dtype_policy="bf16"),
            x, y,
        )
        diff = _max_param_diff(ref.params, dp.params)
        assert diff > 0  # quantization happened
        assert diff < 0.05  # but stays small

    def test_bf16_training_still_learns(self):
        model = MLP([12, 24, 4])
        rng = np.random.default_rng(3)
        x, y = synthetic_classification(rng, 128, 12, 4, noise=0.05)
        dp = DataParallelTrainer(model, SGDMomentum(0.2), dp_x=4,
                                 grad_dtype_policy="bf16")
        dp.init(np.random.default_rng(0))
        for step in range(50):
            dp.step(x, y)
        assert model.accuracy(dp.params, x, y) > 0.9


class TestMechanics:
    def test_batch_divisibility(self):
        model = MLP([4, 4, 2])
        dp = DataParallelTrainer(model, SGDMomentum(0.1), dp_x=4)
        dp.init(np.random.default_rng(0))
        with pytest.raises(ValueError, match="divisible"):
            dp.step(np.zeros((6, 4)), np.zeros(6, int))

    def test_step_before_init(self):
        dp = DataParallelTrainer(MLP([4, 2]), SGDMomentum(0.1), dp_x=2)
        with pytest.raises(RuntimeError):
            dp.step(np.zeros((4, 4)), np.zeros(4, int))

    def test_invalid_mesh(self):
        with pytest.raises(ValueError):
            DataParallelTrainer(MLP([4, 2]), SGDMomentum(0.1), dp_x=0)

    def test_train_loop(self):
        model = MLP([8, 8, 3])
        x, y = _data(features=8, classes=3)

        def batches():
            while True:
                yield x, y

        dp = DataParallelTrainer(model, SGDMomentum(0.1), dp_x=2)
        dp.init(np.random.default_rng(0))
        log = dp.train(batches(), steps=5)
        assert len(log.losses) == 5
        assert log.last_loss == log.losses[-1]

"""Reproduction tests: every table/figure must match the paper's *shape*.

These are the acceptance tests of the whole repo: each asserts the
qualitative claims (who wins, by roughly what factor, where crossovers
fall) and the calibrated anchors within tolerance.
"""

import pytest

from repro.experiments import ablations, figure5, figure6, figure7, figure8
from repro.experiments import figure9, figure10, figure11, table1, table2
from repro.experiments.calibration import CALIBRATIONS, end_to_end_model, spec_for
from repro.experiments.gpu import gpu_end_to_end
from repro.experiments.report import Figure, Table
from repro.experiments.runner import EXPERIMENTS, main
from repro.experiments.table1 import PAPER_TF_MINUTES
from repro.experiments.table2 import PAPER_INIT_SECONDS
from repro.core.planner import plan_parallelism

SCALING_SUBSET = (16, 256, 4096)


class TestTable1:
    @pytest.fixture(scope="class")
    def table(self):
        return table1.run()

    def test_all_rows_present(self, table):
        assert len(table.rows) == 7

    def test_tf_minutes_within_35_percent(self, table):
        for row in table.rows:
            name, chips, tf_min = row[0], row[1], row[2]
            paper = PAPER_TF_MINUTES[(name, chips)]
            assert tf_min == pytest.approx(paper, rel=0.35), (name, chips)

    def test_four_models_under_half_minute(self, table):
        """The paper's headline: 4 benchmarks train in 16-28 seconds."""
        fast = [r for r in table.rows if isinstance(r[2], float) and r[2] < 0.6]
        assert len(fast) >= 4

    def test_v06_speedups_in_range(self, table):
        for row in table.rows:
            speedup, paper = row[6], row[7]
            if isinstance(speedup, float) and isinstance(paper, float):
                assert speedup == pytest.approx(paper, rel=0.35)


class TestTable2:
    @pytest.fixture(scope="class")
    def table(self):
        return table2.run()

    def test_init_times_close_to_paper(self, table):
        for row in table.rows:
            name = row[0]
            assert row[1] == pytest.approx(PAPER_INIT_SECONDS[(name, "tf")], rel=0.1)
            assert row[3] == pytest.approx(PAPER_INIT_SECONDS[(name, "jax")], rel=0.1)

    def test_jax_always_faster(self, table):
        for row in table.rows:
            assert row[3] < row[1]


class TestScalingFigures:
    def test_figure5_ordering(self):
        fig = figure5.run(SCALING_SUBSET)
        e2e = dict(zip(*fig.series["end_to_end"]))
        thr = dict(zip(*fig.series["throughput"]))
        # throughput closer to ideal than end-to-end (convergence tax).
        assert thr[4096] > e2e[4096]
        assert e2e[4096] > 30  # large but sub-ideal speedup

    def test_figure6_allreduce_constant_compute_shrinks(self):
        fig = figure6.run(SCALING_SUBSET)
        comp = dict(zip(*fig.series["compute_ms"]))
        ar = dict(zip(*fig.series["allreduce_ms"]))
        assert comp[16] > 10 * comp[4096]
        assert ar[4096] < 2 * ar[16]

    def test_figure6_fraction_anchor(self):
        fig = figure6.run((4096,))
        frac = fig.series["allreduce_fraction_at_4096"][1][0]
        assert frac == pytest.approx(0.22, abs=0.05)

    def test_figure7_bert_scales_best(self):
        fig = figure7.run(SCALING_SUBSET)
        e2e = dict(zip(*fig.series["end_to_end"]))
        assert e2e[4096] > 80  # BERT's near-throughput end-to-end scaling

    def test_figure8_fraction_anchor(self):
        fig = figure8.run((4096,))
        frac = fig.series["allreduce_fraction_at_4096"][1][0]
        assert frac == pytest.approx(0.273, abs=0.06)

    def test_figure8_batch_per_chip_trajectory(self):
        fig = figure8.run(SCALING_SUBSET)
        bpc = dict(zip(*fig.series["batch_per_chip"]))
        assert bpc[16] == 48
        assert bpc[4096] == 2


class TestFigure9:
    @pytest.fixture(scope="class")
    def fig(self):
        return figure9.run()

    def test_series_present(self, fig):
        for name in ("ssd_v0.7", "maskrcnn_v0.7", "transformer_v0.7"):
            assert name in fig.series

    def test_transformer_anchor(self, fig):
        cores, speedups = fig.series["transformer_v0.7"]
        at4 = dict(zip(cores, speedups))[4]
        assert at4 == pytest.approx(2.3, abs=0.6)

    def test_v07_beats_v06(self, fig):
        for model in ("ssd", "maskrcnn"):
            v07 = dict(zip(*fig.series[f"{model}_v0.7"]))
            v06 = dict(zip(*fig.series[f"{model}_v0.6"]))
            assert v07[8] >= v06[8]

    def test_maskrcnn_scales_best_spatially(self, fig):
        ssd8 = dict(zip(*fig.series["ssd_v0.7"]))[8]
        mrcnn8 = dict(zip(*fig.series["maskrcnn_v0.7"]))[8]
        assert mrcnn8 > ssd8 > 2.0


class TestFigure10And11:
    def test_tpu_wins_big_benchmarks_vs_v100(self):
        """Same-generation comparison: TPU beats V100 everywhere."""
        t = figure10.run()
        for row in t.rows:
            name, tpu_min, v100_min = row[0], row[2], row[6]
            assert tpu_min < v100_min, name

    def test_transformer_tpu_advantage(self):
        """Model parallelism lets the TPU run 4096 chips where the GPU
        submission stopped at 480."""
        t = figure10.run()
        row = next(r for r in t.rows if r[0] == "transformer")
        assert row[2] < row[4]  # TPU < A100

    def test_figure11_tpu_speedup_higher_at_max_scale(self):
        fig = figure11.run()
        for name in ("resnet50", "bert"):
            tpu = dict(zip(*fig.series[f"tpu_{name}"]))
            gpu = dict(zip(*fig.series[f"gpu_a100_{name}"]))
            assert max(tpu.values()) > max(gpu.values())


class TestAblations:
    def test_wus_bert_claim(self):
        t = ablations.wus_ablation()
        bert_off = next(r for r in t.rows if r[0] == "bert" and r[2] == "off")
        bert_on = next(r for r in t.rows if r[0] == "bert" and r[2] == "on")
        assert bert_off[5] > 8.0  # update is a significant % without WUS
        assert bert_on[5] < 1.0

    def test_wus_ssd_10pct_claim(self):
        t = ablations.wus_ablation()
        ssd_on = next(r for r in t.rows if r[0] == "ssd" and r[2] == "on")
        assert ssd_on[6] == pytest.approx(1.10, abs=0.07)

    def test_2d_allreduce_wins_at_4096(self):
        t = ablations.allreduce_2d_ablation()
        for row in t.rows:
            assert row[4] > 2.0  # hierarchical at least 2x faster

    def test_maskrcnn_comm_30_to_10(self):
        t = ablations.maskrcnn_comm_ablation()
        v06 = next(r for r in t.rows if r[0] == "v0.6")
        v07 = next(r for r in t.rows if r[0] == "v0.7")
        assert v06[5] == pytest.approx(30.0, abs=10.0)
        assert v07[5] == pytest.approx(10.0, abs=5.0)

    def test_dlrm_input_table(self):
        t = ablations.dlrm_input_ablation()
        rates = t.column("Mexamples/s per host")
        assert rates[-1] > rates[0]  # fully optimized beats naive
        assert t.rows[-1][2] == "yes"


class TestNewAblations:
    def test_dlrm_eval_accumulation_table(self):
        t = ablations.dlrm_eval_accumulation()
        naive = next(r for r in t.rows if "per-step" in r[0])
        opt = next(r for r in t.rows if "accumulate" in r[0])
        assert opt[1] < naive[1]
        assert opt[3] < naive[3] / 2

    def test_distributed_batchnorm_table(self):
        t = ablations.distributed_batchnorm_ablation()
        errors = t.column("mean |moment error|")
        assert errors == sorted(errors, reverse=True)  # bigger groups, less error
        costs = t.column("comm us/layer")
        assert costs[0] == 0  # group of 1 pays nothing
        assert costs[-1] < 100  # and even global groups are ~free


class TestSensitivity:
    def test_conclusions_robust_to_single_perturbations(self):
        from repro.experiments import sensitivity

        t = sensitivity.run()
        for row in t.rows:
            label = row[0]
            # "bw x<f>, eff x<f>": count how many factors differ from 1.
            factors = [part.split("x")[1] for part in label.split(", ")]
            n_perturbed = sum(f != "1.0" for f in factors)
            if n_perturbed <= 1:
                assert all(v == "yes" for v in row[1:]), label

    def test_schedule_ordering_always_holds(self):
        from repro.experiments import sensitivity

        t = sensitivity.run()
        assert all(row[1] == "yes" for row in t.rows)


class TestCsvExport:
    def test_table_csv(self):
        t = table2.run()
        csv_text = t.to_csv()
        assert csv_text.splitlines()[0].startswith("Benchmark")
        assert len(csv_text.splitlines()) == len(t.rows) + 1

    def test_figure_csv(self):
        fig = figure6.run((16, 4096))
        lines = fig.to_csv().splitlines()
        assert lines[0] == "series,chips,value"
        assert len(lines) > 4

    def test_cli_csv_option(self, tmp_path, capsys):
        assert main(["table2", "--csv", str(tmp_path)]) == 0
        assert (tmp_path / "table2.csv").exists()


class TestRunnerAndReport:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) >= {
            "table1", "table2", "figure5", "figure6", "figure7", "figure8",
            "figure9", "figure10", "figure11", "ablations", "availability",
            "spmd_search",
        }

    def test_spmd_search_experiment(self):
        from repro.experiments import spmd_search

        table = spmd_search.run()
        rows = {
            (r[0], r[1], r[2]): r for r in table.rows
        }  # (model, features, cores)
        assert ("ssd", "v07", 4) in rows
        for key, row in rows.items():
            searched_ms, speedup = row[5], row[6]
            assert searched_ms > 0
            # search matches or beats the hand annotation everywhere.
            assert speedup >= 0.999, key
        # the executable graph reports a bit-exactness verdict.
        assert rows[("resnet_block", "v07", 4)][7] == "yes"

    def test_cli_single_experiment(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out

    def test_cli_list(self, capsys):
        assert main(["--list"]) == 0
        assert "figure9" in capsys.readouterr().out

    def test_cli_unknown(self, capsys):
        assert main(["figure99"]) == 2

    def test_table_formatting(self):
        t = Table("T", ["a", "b"])
        t.add_row(1, 2.5)
        text = t.format()
        assert "T" in text and "2.5" in text
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_figure_formatting(self):
        f = Figure("F", "x")
        f.add_series("s", [1, 2], [3.0, 4.0])
        assert "s" in f.format()
        with pytest.raises(ValueError):
            f.add_series("bad", [1], [1, 2])


class TestGpuModel:
    def test_dlrm_matches_nvidia_scale(self):
        r = gpu_end_to_end("dlrm", 16, "a100")
        assert r.total_minutes == pytest.approx(3.33, rel=0.4)

    def test_a100_faster_than_v100(self):
        for name in ("resnet50", "bert"):
            a = gpu_end_to_end(name, 512, "a100")
            v = gpu_end_to_end(name, 512, "v100")
            assert a.total_seconds < v.total_seconds


class TestCalibrationRegistry:
    def test_all_benchmarks_calibrated(self):
        assert set(CALIBRATIONS) == {
            "resnet50", "bert", "ssd", "transformer", "maskrcnn", "dlrm"
        }

    def test_unknown_lookup(self):
        with pytest.raises(KeyError):
            spec_for("alexnet")
        with pytest.raises(ValueError):
            end_to_end_model("resnet50", "pytorch")

    def test_models_construct_for_both_frameworks(self):
        for name in CALIBRATIONS:
            for fw in ("tf", "jax"):
                model = end_to_end_model(name, fw)
                plan = plan_parallelism(spec_for(name), 256)
                result = model.run(plan.config)
                assert result.total_seconds > 0


class TestAvailability:
    def test_goodput_degrades_with_failure_rate(self):
        from repro.experiments import availability

        table = availability.sweep(
            chip_counts=(64,), failure_rates=(0.0, 1e-3)
        )
        assert len(table.rows) == 2
        clean, faulty = table.rows
        assert clean[6] == "1.000"          # no failures: perfect goodput
        assert clean[2] == 0
        assert faulty[2] > 0                # 64 chips * 200 steps * 1e-3
        assert float(faulty[6]) < 1.0
        assert 0.0 < float(faulty[6])

    def test_sweep_is_reproducible(self):
        from repro.experiments import availability

        a = availability.sweep(chip_counts=(64,), failure_rates=(1e-3,))
        b = availability.sweep(chip_counts=(64,), failure_rates=(1e-3,))
        assert a.rows == b.rows

    def test_chaos_demo_replays_deterministically(self):
        from repro.experiments import availability

        table = availability.chaos_demo()
        assert len(table.rows) == 3
        for row in table.rows:
            assert row[6] == "yes", row
            assert 0.0 < float(row[5]) <= 1.0

"""Flight recorder tests: ring bounds, concurrent writers, postmortem
bundles, and the end-to-end chip-death acceptance path."""

from __future__ import annotations

import json
import threading

import pytest

from repro import telemetry
from repro.telemetry.flight import (
    DEFAULT_CAPACITY,
    POSTMORTEM_SCHEMA,
    FlightRecorder,
    on_terminal_failure,
)
from repro.telemetry.tracer import Tracer


@pytest.fixture(autouse=True)
def _clean_telemetry():
    telemetry.enable()
    telemetry.reset()
    yield
    telemetry.enable()
    telemetry.reset()


class TestRingBounds:
    def test_ring_never_exceeds_capacity(self):
        rec = FlightRecorder(capacity=8)
        for i in range(100):
            rec.record("span", f"op{i}", i=i)
            assert len(rec) <= 8
        records = rec.records
        assert len(records) == 8
        # Oldest dropped, newest kept, order preserved.
        assert [r.data["i"] for r in records] == list(range(92, 100))

    def test_default_capacity(self):
        assert FlightRecorder().capacity == DEFAULT_CAPACITY

    def test_capacity_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLIGHT_CAPACITY", "17")
        assert FlightRecorder().capacity == 17
        monkeypatch.setenv("REPRO_FLIGHT_CAPACITY", "garbage")
        assert FlightRecorder().capacity == DEFAULT_CAPACITY

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_clear_resets_ring_and_epoch(self):
        rec = FlightRecorder(capacity=4)
        rec.record("span", "a")
        rec.dump(reason="test")
        rec.clear()
        assert len(rec) == 0
        # dump_count survives clear() — availability tables diff it.
        assert rec.dump_count == 1

    def test_memory_is_bounded_by_capacity(self):
        """The ring holds at most ``capacity`` records no matter the volume,
        and records carry only small scalar payloads."""
        rec = FlightRecorder(capacity=32)
        for i in range(10_000):
            rec.record("counters", "delta", value=float(i))
        assert len(rec.records) == 32
        for r in rec.records:
            assert set(r.data) == {"value"}


class TestConcurrentWriters:
    def test_threads_recording_directly(self):
        rec = FlightRecorder(capacity=64)
        n_threads, n_each = 8, 500

        def writer(tid: int):
            for i in range(n_each):
                rec.record("span", f"t{tid}", i=i)

        threads = [threading.Thread(target=writer, args=(t,)) for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        records = rec.records
        assert len(records) == 64
        # Every surviving record is intact (no torn writes).
        for r in records:
            assert r.kind == "span" and r.name.startswith("t")
            assert 0 <= r.data["i"] < n_each

    def test_tracer_sink_under_concurrent_spans(self):
        """Concurrent measured spans flow through the sink without
        corrupting the ring; per-thread span stacks stay consistent."""
        tracer = Tracer()
        rec = FlightRecorder(capacity=128)
        tracer.add_sink(rec.on_trace_event)
        n_threads, n_each = 6, 40

        def worker(tid: int):
            for i in range(n_each):
                with tracer.span(f"outer{tid}", category="compute"):
                    with tracer.span(f"inner{tid}", category="comm"):
                        pass

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tracer.trace.events) == n_threads * n_each * 2
        records = rec.records
        assert len(records) == 128
        for r in records:
            assert r.kind == "span"
            assert r.data["duration"] >= 0.0


class TestDisabled:
    def test_record_is_noop_when_disabled(self):
        rec = FlightRecorder(capacity=8)
        telemetry.disable()
        rec.record("span", "a")
        rec.record_fault(RuntimeError("x"))
        rec.record_counter_deltas()
        assert len(rec) == 0

    def test_on_terminal_failure_disabled_writes_nothing(self, tmp_path):
        rec = FlightRecorder(capacity=8, dump_dir=str(tmp_path))
        telemetry.disable()
        assert on_terminal_failure(RuntimeError("boom"), recorder=rec) is None
        assert rec.last_postmortem is None
        assert list(tmp_path.iterdir()) == []

    def test_repro_telemetry_0_disables_process_recorder(self):
        """The process recorder's writes are gated on the same flag
        ``REPRO_TELEMETRY=0`` clears at import."""
        telemetry.flight_recorder.clear()
        telemetry.disable()
        telemetry.flight_recorder.record("span", "a")
        telemetry.tracer.span("x").__enter__()
        assert len(telemetry.flight_recorder) == 0


class TestPostmortem:
    def test_bundle_contents(self):
        rec = FlightRecorder(capacity=16)
        rec.record("span", "fwd", duration=1.0)
        err = RuntimeError("chip died")
        rec.record_fault(err, origin="test", step=3)
        bundle = rec.postmortem_bundle("test", exc=err)
        assert bundle["schema"] == POSTMORTEM_SCHEMA
        assert bundle["fault"]["type"] == "RuntimeError"
        assert bundle["num_records"] == 2
        assert bundle["records"][0]["name"] == "fwd"
        assert "counters" in bundle
        json.dumps(bundle)  # JSON-ready all the way down

    def test_dump_memory_only_by_default(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        rec = FlightRecorder(capacity=4)
        rec.record("span", "a")
        assert rec.dump(reason="r") is None
        assert rec.last_postmortem["reason"] == "r"
        assert rec.last_postmortem_seconds >= 0.0
        assert list(tmp_path.iterdir()) == []

    def test_dump_writes_file_when_dir_set(self, tmp_path):
        rec = FlightRecorder(capacity=4, dump_dir=str(tmp_path))
        rec.record("fault", "X")
        path = rec.dump(reason="crash")
        assert path is not None
        with open(path) as f:
            bundle = json.load(f)
        assert bundle["reason"] == "crash"
        assert bundle["num_records"] == 1

    def test_dump_write_failure_is_best_effort(self, tmp_path):
        # dump_dir exists as a *file*, so the write path raises OSError.
        # The terminal failure being reported must still propagate at the
        # call sites, so dump() swallows the error, keeps the bundle in
        # memory, and returns None.
        blocker = tmp_path / "postmortems"
        blocker.write_text("not a directory")
        rec = FlightRecorder(capacity=4, dump_dir=str(blocker))
        rec.record("fault", "X")
        assert rec.dump(reason="crash") is None
        assert rec.last_postmortem["reason"] == "crash"
        assert rec.dump_count == 1

    def test_on_terminal_failure_survives_broken_dump_dir(self, tmp_path):
        blocker = tmp_path / "postmortems"
        blocker.write_text("not a directory")
        rec = FlightRecorder(capacity=8, dump_dir=str(blocker))
        err = RuntimeError("chip died")
        # Must not replace the terminal failure with an OSError.
        assert on_terminal_failure(err, origin="test", recorder=rec) is None
        assert rec.last_postmortem["fault"]["type"] == "RuntimeError"

    def test_on_terminal_failure_dedups_per_exception(self):
        rec = FlightRecorder(capacity=8)
        err = RuntimeError("boom")
        on_terminal_failure(err, origin="layer1", recorder=rec)
        on_terminal_failure(err, origin="layer2", recorder=rec)
        assert rec.dump_count == 1
        assert len(rec.records_of_kind("fault")) == 1

    def test_dump_counter_metric(self):
        rec = FlightRecorder(capacity=8)
        rec.dump(reason="why")
        assert telemetry.metrics.value("flight_postmortems", reason="why") == 1


class TestCounterDeltas:
    def test_only_changes_recorded(self):
        rec = FlightRecorder(capacity=16)
        telemetry.metrics.counter("steps_total").inc(3)
        rec.record_counter_deltas()
        telemetry.metrics.counter("steps_total").inc(2)
        telemetry.metrics.gauge("loss").set(0.5)
        rec.record_counter_deltas()
        rec.record_counter_deltas()  # nothing moved: no record
        deltas = rec.records_of_kind("counters")
        assert len(deltas) == 2
        assert deltas[0].data["deltas"]["steps_total"] == 3
        assert deltas[1].data["deltas"]["steps_total"] == 2
        assert deltas[1].data["deltas"]["loss"] == 0.5

    def test_deltas_under_concurrent_metric_creation(self):
        """New families/children appearing mid-iteration must not raise
        'dictionary changed size during iteration' — the recorder reads a
        lock-protected registry snapshot."""
        rec = FlightRecorder(capacity=64)
        stop = threading.Event()

        def creator():
            i = 0
            while not stop.is_set():
                telemetry.metrics.counter("churn_family_%d" % (i % 7), device=str(i)).inc()
                i += 1

        t = threading.Thread(target=creator)
        t.start()
        try:
            for _ in range(300):
                rec.record_counter_deltas()
        finally:
            stop.set()
            t.join()


class TestChipDeathAcceptance:
    def test_extermination_produces_postmortem(self):
        """Seed-deterministic chip-death run: the bundle must hold the fault
        event, the >= 64 preceding spans, and the final counter snapshot."""
        from repro.experiments.availability import postmortem_demo

        table = postmortem_demo(seed=7)
        (row,) = table.rows
        assert row[0] == "DeviceLostError"
        bundle = telemetry.flight_recorder.last_postmortem
        assert bundle is not None
        assert bundle["schema"] == POSTMORTEM_SCHEMA
        assert bundle["fault"]["type"] == "DeviceLostError"
        kinds = [r["kind"] for r in bundle["records"]]
        assert kinds.count("span") >= 64
        assert kinds.count("fault") == 1
        assert bundle["counters"]  # final registry snapshot travels along
        assert bundle["num_records"] <= telemetry.flight_recorder.capacity

    def test_demo_is_seed_deterministic(self):
        from repro.experiments.availability import postmortem_demo

        a = postmortem_demo(seed=7)
        first = telemetry.flight_recorder.last_postmortem["num_records"]
        telemetry.reset()
        b = postmortem_demo(seed=7)
        second = telemetry.flight_recorder.last_postmortem["num_records"]
        assert a.rows[0][:5] == b.rows[0][:5]
        assert first == second

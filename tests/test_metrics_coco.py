"""COCO-eval scheduling tests (§4.4)."""

import pytest

from repro.metrics.coco import (
    coordinator_eval_schedule,
    round_robin_eval_schedule,
)


class TestCoordinator:
    def test_queueing_when_evals_pile_up(self):
        # Evals triggered every 10s, each takes 25s: they queue.
        triggers = [0.0, 10.0, 20.0]
        s = coordinator_eval_schedule(triggers, eval_seconds=25.0)
        assert s.completion_times == (25.0, 50.0, 75.0)
        assert s.latencies == (25.0, 40.0, 55.0)

    def test_no_queueing_when_sparse(self):
        s = coordinator_eval_schedule([0.0, 100.0], eval_seconds=10.0)
        assert s.latencies == (10.0, 10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            coordinator_eval_schedule([], 10.0)
        with pytest.raises(ValueError):
            coordinator_eval_schedule([5.0, 1.0], 10.0)
        with pytest.raises(ValueError):
            coordinator_eval_schedule([0.0], 0.0)


class TestRoundRobin:
    def test_overlapping_evals(self):
        triggers = [0.0, 10.0, 20.0]
        s = round_robin_eval_schedule(triggers, eval_seconds=25.0, num_workers=3)
        assert s.completion_times == (25.0, 35.0, 45.0)
        assert s.latencies == (25.0, 25.0, 25.0)

    def test_single_worker_degenerates_to_coordinator(self):
        triggers = [0.0, 10.0, 20.0]
        rr = round_robin_eval_schedule(triggers, 25.0, num_workers=1)
        co = coordinator_eval_schedule(triggers, 25.0)
        assert rr.completion_times == co.completion_times

    def test_round_robin_beats_coordinator(self):
        """The paper's motivation for JAX's distributed COCO eval."""
        triggers = [float(10 * i) for i in range(8)]
        rr = round_robin_eval_schedule(triggers, 30.0, num_workers=8)
        co = coordinator_eval_schedule(triggers, 30.0)
        assert rr.max_latency < co.max_latency
        assert rr.final_completion < co.final_completion

    def test_worker_validation(self):
        with pytest.raises(ValueError):
            round_robin_eval_schedule([0.0], 10.0, num_workers=0)

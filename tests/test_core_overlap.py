"""Overlap engine: DES schedule, bucket plans, and the analytic trade-off.

The two invariants of :mod:`repro.core.overlap` are pinned here, plus the
property tests of the issue: overlap-aware step time never exceeds the
serial schedule (equality exactly when there is nothing to hide), and the
exposed communication strictly decreases as the bucket count grows from 1
until the per-launch latency dominates.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.allreduce import allreduce_launch_params, gradient_allreduce
from repro.core.overlap import (
    DEFAULT_SEGMENTS,
    analytic_overlap,
    bucket_ready_times,
    layer_backward_fractions,
    measured_overlap,
    simulate_overlap_schedule,
)
from repro.core.step_time import StepTimeModel
from repro.core.strategy import ParallelismConfig
from repro.experiments.calibration import CALIBRATIONS, spec_for
from repro.hardware.topology import TorusMesh, slice_for_chips
from repro.runtime.bucket import BucketPlan, GradientBucket


def _template(rng, num_tensors=7):
    return {
        f"t{i}": rng.standard_normal((int(rng.integers(1, 9)), int(rng.integers(1, 9))))
        for i in range(num_tensors)
    }


class TestSimulateOverlapSchedule:
    def test_single_bucket_at_compute_end_is_serial(self):
        r = simulate_overlap_schedule([3.0], [2.0], 3.0)
        assert r.step_seconds == pytest.approx(5.0)
        assert r.exposed_comm_seconds == pytest.approx(2.0)
        assert r.hidden_comm_seconds == pytest.approx(0.0)
        assert r.serial_step_seconds == pytest.approx(5.0)

    def test_early_bucket_fully_hidden(self):
        r = simulate_overlap_schedule([1.0, 4.0], [1.0, 1.0], 4.0)
        # Bucket 0 runs [1, 2] under compute; bucket 1 is the only tail.
        assert r.step_seconds == pytest.approx(5.0)
        assert r.exposed_comm_seconds == pytest.approx(1.0)
        assert r.overlap_efficiency == pytest.approx(0.5)

    def test_fifo_queueing_serializes_the_link(self):
        # Bucket 0 occupies [0, 10]; bucket 1 (ready at 1) must wait.
        r = simulate_overlap_schedule([0.0, 1.0], [10.0, 2.0], 4.0)
        assert r.step_seconds == pytest.approx(12.0)
        assert r.exposed_comm_seconds == pytest.approx(8.0)

    def test_ready_after_compute_end_clamps(self):
        r = simulate_overlap_schedule([9.0], [1.0], 5.0)
        assert r.bucket_ready_s == (5.0,)
        assert r.step_seconds == pytest.approx(6.0)

    def test_zero_comm_is_pure_compute(self):
        r = simulate_overlap_schedule([1.0, 2.0], [0.0, 0.0], 3.0)
        assert r.step_seconds == pytest.approx(3.0)
        assert r.exposed_comm_seconds == 0.0
        assert r.overlap_efficiency == 1.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            simulate_overlap_schedule([1.0], [1.0, 2.0], 3.0)

    def test_trace_records_compute_and_transfers(self):
        r = simulate_overlap_schedule([0.5], [1.0], 2.0)
        names = {e.name for e in r.trace.events}
        assert "forward_backward" in names
        assert "bucket0" in names

    @given(
        n=st.integers(1, 6),
        compute=st.floats(0.1, 50.0),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_never_worse_than_serial(self, n, compute, seed):
        rng = np.random.default_rng(seed)
        ready = sorted(float(x) for x in rng.uniform(0.0, compute, n))
        comm = [float(x) for x in rng.uniform(0.0, 10.0, n)]
        r = simulate_overlap_schedule(ready, comm, compute)
        assert r.step_seconds <= r.serial_step_seconds + 1e-9
        assert 0.0 <= r.exposed_comm_seconds <= r.comm_seconds + 1e-9
        # Equality iff nothing was hidden.
        if r.hidden_comm_seconds > 1e-9:
            assert r.step_seconds < r.serial_step_seconds


class TestBucketPlan:
    def test_single_bucket_matches_plain_gradient_bucket(self, rng):
        template = _template(rng)
        plan = BucketPlan(template, 1, dtype=np.float64)
        plain = GradientBucket(template, dtype=np.float64)
        (bucket,) = plan.buckets
        assert bucket.names == plain.names
        assert bucket.offsets == plain.offsets
        assert bucket.size == plain.size
        assert bucket.dtype == plain.dtype
        assert plan.ready_fractions == (1.0,)

    def test_buckets_partition_in_reverse_order(self, rng):
        template = _template(rng)
        plan = BucketPlan(template, 3)
        names = [n for b in plan.buckets for n in b.names]
        assert sorted(names) == sorted(template)
        # Launch order covers the tree back to front: bucket 0 holds the
        # deepest (last declared) tensors.
        first_of = [list(template).index(b.names[0]) for b in plan.buckets]
        assert first_of == sorted(first_of, reverse=True)

    def test_clamped_to_tensor_count(self, rng):
        template = _template(rng, num_tensors=3)
        plan = BucketPlan(template, 10)
        assert plan.num_buckets == 3
        assert all(len(b.names) == 1 for b in plan.buckets)

    def test_ready_fractions_cumulative(self, rng):
        template = _template(rng)
        plan = BucketPlan(template, 4)
        fr = plan.ready_fractions
        assert all(a < b for a, b in zip(fr, fr[1:]))
        assert fr[-1] == pytest.approx(1.0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            BucketPlan({}, 1)
        with pytest.raises(ValueError):
            BucketPlan({"a": np.zeros(3)}, 0)


class TestLayerFractions:
    def test_reversed_and_normalized(self):
        spec = spec_for("bert")
        fr = layer_backward_fractions(spec)
        assert sum(fr) == pytest.approx(1.0)
        positive = [l.flops_fraction for l in spec.layers if l.flops_fraction > 0]
        assert list(fr) == pytest.approx(list(reversed([f / sum(positive) for f in positive])))

    def test_uniform_fallback(self):
        class Bare:
            layers = ()

        fr = layer_backward_fractions(Bare())
        assert len(fr) == DEFAULT_SEGMENTS
        assert all(f == pytest.approx(1.0 / DEFAULT_SEGMENTS) for f in fr)


class TestBucketReadyTimes:
    def test_uniform_fractions_equal_spacing(self):
        ready = bucket_ready_times([0.25] * 4, 8.0, 2.0, 4)
        assert ready == pytest.approx([4.0, 6.0, 8.0, 10.0])

    def test_last_bucket_at_backward_end(self):
        ready = bucket_ready_times([0.7, 0.3], 5.0, 1.0, 3)
        assert ready[-1] == pytest.approx(6.0)
        assert all(a <= b for a, b in zip(ready, ready[1:]))


class TestAnalyticOverlap:
    def test_single_bucket_equals_serial(self):
        r = analytic_overlap(
            fractions=[0.5, 0.5], compute_seconds=4.0, grad_bytes=1e6,
            num_buckets=1, comm_alpha=1e-3, comm_bytes_per_second=1e9,
        )
        assert r.step_seconds == pytest.approx(r.serial_step_seconds)
        assert r.exposed_comm_seconds == pytest.approx(r.comm_seconds)

    def test_more_buckets_pay_more_alpha(self):
        kw = dict(fractions=[0.25] * 4, compute_seconds=4.0, grad_bytes=1e6,
                  comm_alpha=1e-3, comm_bytes_per_second=1e9)
        r1 = analytic_overlap(num_buckets=1, **kw)
        r4 = analytic_overlap(num_buckets=4, **kw)
        assert r4.comm_seconds == pytest.approx(r1.comm_seconds + 3e-3)
        assert r4.step_seconds < r1.step_seconds

    @given(buckets=st.integers(1, 16), seed=st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_invariants_across_bucket_counts(self, buckets, seed):
        rng = np.random.default_rng(seed)
        fr = rng.uniform(0.05, 1.0, int(rng.integers(2, 12)))
        r = analytic_overlap(
            fractions=[float(f) for f in fr],
            compute_seconds=float(rng.uniform(0.1, 10.0)),
            grad_bytes=float(rng.uniform(0.0, 1e9)),
            num_buckets=buckets,
            comm_alpha=float(rng.uniform(0.0, 1e-2)),
            comm_bytes_per_second=float(rng.uniform(1e8, 1e12)),
        )
        assert r.step_seconds <= r.serial_step_seconds + 1e-9
        assert 0.0 <= r.overlap_efficiency <= 1.0 + 1e-9


class TestLaunchParams:
    def test_affine_recovery_exact(self):
        mesh = slice_for_chips(1024)
        alpha, bw = allreduce_launch_params(mesh)
        for payload in (1e5, 1e6, 1e8):
            predicted = alpha + payload / bw
            actual = gradient_allreduce(mesh, payload).total
            assert predicted == pytest.approx(actual, rel=1e-9)

    def test_single_chip_degenerates(self):
        mesh = TorusMesh(1, 1)
        alpha, bw = allreduce_launch_params(mesh)
        assert alpha >= 0.0
        assert math.isinf(bw) or bw > 0.0


class TestStepTimeOverlap:
    @pytest.fixture()
    def bert_model(self):
        spec, cal = spec_for("bert"), CALIBRATIONS["bert"]

        def build(**kw):
            return StepTimeModel(
                spec,
                ParallelismConfig(num_chips=4096, global_batch=16384),
                mxu_efficiency=cal.mxu_efficiency,
                step_overhead=cal.step_overhead,
                **kw,
            )

        return build

    def test_single_bucket_cost_matches_serial_model(self, bert_model):
        serial = bert_model()
        assert serial.bucketed_allreduce_time(1) == serial.allreduce_time()

    def test_overlap_flag_selects_exposed_accounting(self, bert_model):
        serial = bert_model().breakdown()
        overlapped = bert_model(overlap=True, overlap_buckets=8).breakdown()
        assert serial.exposed_allreduce is None
        assert overlapped.exposed_allreduce is not None
        assert overlapped.exposed_allreduce < overlapped.allreduce
        assert overlapped.device_time < serial.device_time

    def test_overlap_single_bucket_equals_serial_step(self, bert_model):
        serial = bert_model().breakdown()
        b1 = bert_model(overlap=True, overlap_buckets=1).breakdown()
        assert b1.device_time == pytest.approx(serial.device_time, rel=1e-9)

    def test_exposed_strictly_decreases_then_latency_bound(self, bert_model):
        model = bert_model(overlap=True)
        sweep = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512]
        exposed = [model.overlap_result(b).exposed_comm_seconds for b in sweep]
        # Strictly decreasing from one bucket up to the argmin ...
        best = exposed.index(min(exposed))
        assert best > 0
        for a, b in zip(exposed[: best + 1], exposed[1 : best + 1]):
            assert b < a
        # ... and the latency-bound regime exists: past the argmin the
        # per-launch alpha eventually pushes the exposed tail back up.
        assert max(exposed[best:]) > exposed[best]

    def test_serial_path_unchanged_by_default(self, bert_model):
        # overlap=False keeps the seed behavior: plain serial sum.
        b = bert_model().breakdown()
        assert b.device_time == pytest.approx(
            b.compute + b.allreduce + b.mp_comm + b.weight_update + b.embedding
        )

    @pytest.mark.parametrize("buckets", [1, 2, 4, 8, 16, 32])
    def test_overlap_step_never_worse_than_serial(self, bert_model, buckets):
        serial = bert_model().breakdown().device_time
        overlapped = bert_model(
            overlap=True, overlap_buckets=buckets
        ).breakdown().device_time
        assert overlapped <= serial + 1e-12
        if buckets == 1:
            assert overlapped == pytest.approx(serial, rel=1e-9)
        else:
            assert overlapped < serial


class TestMeasuredOverlap:
    def test_measured_overlap_matches_manual_schedule(self):
        r = measured_overlap(
            forward_backward_seconds=3.0,
            bucket_ready_fractions=[0.5, 1.0],
            bucket_comm_s=[0.5, 0.5],
            bucket_bytes=[100.0, 100.0],
        )
        backward = 2.0  # 2/3 of 3.0
        head = 1.0
        assert r.bucket_ready_s == pytest.approx((head + 1.0, 3.0))
        assert r.step_seconds == pytest.approx(3.5)
        assert r.exposed_comm_seconds == pytest.approx(0.5)

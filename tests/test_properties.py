"""Cross-module property-based tests (hypothesis).

Invariants that must hold across randomly drawn meshes, payloads, and
configurations — the broad-net complement to the targeted unit tests.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.allreduce import flat_ring_allreduce, two_phase_allreduce
from repro.comm.cost import reduce_scatter_time
from repro.comm.schedule import simulate_ring_reduce_scatter
from repro.core.planner import PLANNER_RULES, plan_parallelism
from repro.core.step_time import StepTimeModel
from repro.core.weight_update_sharding import shard_states, sharded_update
from repro.experiments.calibration import spec_for
from repro.hardware.rings import y_ring
from repro.hardware.routing import dimension_ordered_path
from repro.hardware.topology import Coordinate, TorusMesh
from repro.optim import LAMB
from repro.runtime.collectives import ring_reduce_scatter, two_phase_all_reduce

mesh_dims = st.integers(min_value=1, max_value=8)
payloads = st.floats(min_value=0.0, max_value=1e9, allow_nan=False)


class TestTopologyProperties:
    @given(x=mesh_dims, y=mesh_dims, wx=st.booleans(), wy=st.booleans())
    @settings(max_examples=50, deadline=None)
    def test_neighbors_symmetric(self, x, y, wx, wy):
        mesh = TorusMesh(x, y, wrap_x=wx, wrap_y=wy)
        for c in mesh.chips():
            for n in mesh.neighbors(c):
                assert c in mesh.neighbors(n)

    @given(x=st.integers(2, 8), y=st.integers(2, 8),
           wx=st.booleans(), wy=st.booleans(),
           seed=st.integers(0, 2**31))
    @settings(max_examples=50, deadline=None)
    def test_dimension_ordered_path_valid(self, x, y, wx, wy, seed):
        mesh = TorusMesh(x, y, wrap_x=wx, wrap_y=wy)
        rng = np.random.default_rng(seed)
        src = Coordinate(int(rng.integers(x)), int(rng.integers(y)))
        dst = Coordinate(int(rng.integers(x)), int(rng.integers(y)))
        path = dimension_ordered_path(mesh, src, dst)
        assert path[0] == src and path[-1] == dst
        for a, b in zip(path, path[1:]):
            assert b in mesh.neighbors(a)
        # Never longer than the no-wrap manhattan route.
        assert len(path) - 1 <= abs(src.x - dst.x) + abs(src.y - dst.y)


class TestCostProperties:
    @given(n=st.integers(2, 512), p=payloads)
    @settings(max_examples=80, deadline=None)
    def test_reduce_scatter_nonnegative_and_monotone_in_payload(self, n, p):
        t1 = reduce_scatter_time(n, p, 70e9, 1e-6)
        t2 = reduce_scatter_time(n, p + 1e6, 70e9, 1e-6)
        assert 0.0 <= t1 <= t2

    @given(n=st.integers(2, 512), p=st.floats(1e3, 1e9))
    @settings(max_examples=80, deadline=None)
    def test_line_never_faster_than_ring(self, n, p):
        ring = reduce_scatter_time(n, p, 70e9, 1e-6, closed=True)
        line = reduce_scatter_time(n, p, 70e9, 1e-6, closed=False)
        assert line >= ring

    @given(x=st.integers(1, 16), y=st.integers(1, 16), p=st.floats(0, 1e9))
    @settings(max_examples=60, deadline=None)
    def test_two_phase_breakdown_consistent(self, x, y, p):
        mesh = TorusMesh(x, y, wrap_y=(y >= 3))
        br = two_phase_allreduce(mesh, p)
        assert br.total >= 0
        assert br.shard_bytes == pytest.approx(p / (x * y))
        assert br.total == pytest.approx(br.reduce_time + br.broadcast_time)


class TestDesMatchesAnalytic:
    @given(y=st.integers(3, 12), p=st.floats(1e3, 1e7))
    @settings(max_examples=25, deadline=None)
    def test_ring_des_equals_formula(self, y, p):
        mesh = TorusMesh(2, y, wrap_y=True)
        ring = y_ring(mesh, 0)
        des = simulate_ring_reduce_scatter(mesh, ring, p)
        analytic = reduce_scatter_time(
            y, p, mesh.link_bandwidth, mesh.chip.link_latency, closed=True
        )
        assert des == pytest.approx(analytic, rel=1e-9)


class TestRuntimeProperties:
    @given(
        n=st.integers(1, 8),
        size=st.integers(1, 64),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=50, deadline=None)
    def test_reduce_scatter_assemble_matches_sum(self, n, size, seed):
        rng = np.random.default_rng(seed)
        arrays = [rng.standard_normal(size) for _ in range(n)]
        sv = ring_reduce_scatter(arrays, "f64")
        assert np.allclose(sv.assemble(), np.sum(arrays, axis=0), rtol=1e-10)

    @given(
        n=st.integers(2, 6),
        size=st.integers(1, 40),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=30, deadline=None)
    def test_wus_equals_replicated_update(self, n, size, seed):
        rng = np.random.default_rng(seed)
        opt = LAMB(0.01)
        params = {"w": rng.standard_normal(size)}
        grads = [{"w": rng.standard_normal(size) / n} for _ in range(n)]
        summed = {"w": np.sum([g["w"] for g in grads], axis=0)}
        expected, _ = opt.update(dict(params), summed, opt.init_state(params), 0)
        got, _ = sharded_update(
            dict(params), grads, opt, shard_states(opt.init_state(params), n), 0
        )
        assert np.allclose(got["w"], expected["w"], rtol=1e-9, atol=1e-12)


class TestPlannerProperties:
    @given(
        name=st.sampled_from(sorted(PLANNER_RULES)),
        chips=st.sampled_from([16, 32, 64, 128, 256, 512, 1024, 2048, 4096]),
    )
    @settings(max_examples=60, deadline=None)
    def test_plans_always_valid(self, name, chips):
        plan = plan_parallelism(spec_for(name), chips)
        cfg = plan.config
        rules = PLANNER_RULES[name]
        assert cfg.global_batch <= rules.max_global_batch
        assert cfg.mp_cores <= rules.max_mp_cores
        assert cfg.num_cores % cfg.mp_cores == 0
        # Step model must accept every planned configuration.
        breakdown = StepTimeModel(spec_for(name), cfg).breakdown()
        assert breakdown.total > 0
        assert breakdown.compute > 0

    @given(chips=st.sampled_from([16, 64, 256, 1024, 4096]))
    @settings(max_examples=20, deadline=None)
    def test_flat_ring_never_beats_2d_at_scale(self, chips):
        from repro.hardware.topology import slice_for_chips

        mesh = slice_for_chips(chips)
        payload = 100e6
        flat = flat_ring_allreduce(mesh, payload).total
        hier = two_phase_allreduce(mesh, payload).total
        if chips >= 256:
            assert hier < flat


class TestGridCollectiveProperties:
    @given(
        x=st.integers(1, 3),
        y=st.integers(1, 3),
        size=st.integers(1, 20),
        seed=st.integers(0, 2**31),
        policy=st.sampled_from(["f64", "f32"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_two_phase_functional_matches_sum(self, x, y, size, seed, policy):
        rng = np.random.default_rng(seed)
        grid = [[rng.standard_normal(size) for _ in range(y)] for _ in range(x)]
        out = two_phase_all_reduce(grid, policy)
        truth = np.sum([g for col in grid for g in col], axis=0)
        tol = 1e-10 if policy == "f64" else 1e-4
        for col in out:
            for o in col:
                assert np.allclose(o, truth, rtol=tol, atol=tol)

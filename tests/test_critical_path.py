"""Critical-path analyzer tests: exact attribution partitioning, the
bottleneck chain walk, and per-actor slack — on synthetic traces and on
real DES overlap schedules."""

from __future__ import annotations

import pytest

from repro.core.overlap import simulate_overlap_schedule
from repro.sim.trace import Trace
from repro.telemetry.critical_path import (
    BUCKETS,
    Attribution,
    analyze,
    attribute,
    critical_path,
    device_slack,
    format_result,
)


def _trace(*events) -> Trace:
    """events: (actor, name, start, duration, category) tuples."""
    t = Trace()
    for actor, name, start, dur, cat in events:
        t.record(actor, name, start, dur, category=cat)
    return t


class TestAttribution:
    def test_buckets_partition_window_exactly(self):
        t = _trace(
            ("mxu", "fwd", 0.0, 2.0, "compute"),
            ("ici", "ar0", 1.0, 2.5, "comm"),
            ("host", "fill", 4.0, 1.0, "input"),
        )
        att = attribute(t, window=(0.0, 6.0))
        assert att.buckets["compute"] == pytest.approx(1.0)
        assert att.buckets["hidden_comm"] == pytest.approx(1.0)
        assert att.buckets["exposed_comm"] == pytest.approx(1.5)
        assert att.buckets["input_stall"] == pytest.approx(1.0)
        assert att.buckets["idle"] == pytest.approx(1.5)
        assert att.total == pytest.approx(att.window_seconds, rel=0, abs=0)

    def test_each_bucket_classifies(self):
        t = _trace(
            ("mxu", "fwd", 0.0, 1.0, "compute"),
            ("ici", "ar", 0.5, 1.0, "comm"),
            ("host", "batch", 2.0, 1.0, "input"),
            ("ctrl", "sync", 3.0, 1.0, "barrier"),
            ("??", "mystery", 4.0, 1.0, "weird_category"),
        )
        att = attribute(t, window=(0.0, 6.0))
        assert att.buckets["compute"] == pytest.approx(0.5)
        assert att.buckets["hidden_comm"] == pytest.approx(0.5)
        assert att.buckets["exposed_comm"] == pytest.approx(0.5)
        assert att.buckets["input_stall"] == pytest.approx(1.0)
        assert att.buckets["barrier_wait"] == pytest.approx(1.0)
        assert att.buckets["other"] == pytest.approx(1.0)
        assert att.buckets["idle"] == pytest.approx(1.5)  # 1.5-2.0 plus 5.0-6.0
        assert set(att.buckets) == set(BUCKETS)

    def test_update_counts_as_compute_and_containers_excluded(self):
        t = _trace(
            ("mxu", "train_step", 0.0, 3.0, "step"),  # container: ignored
            ("mxu", "opt", 0.0, 1.0, "update"),
        )
        att = attribute(t, window=(0.0, 3.0))
        assert att.buckets["compute"] == pytest.approx(1.0)
        assert att.buckets["idle"] == pytest.approx(2.0)

    def test_events_clamped_to_window(self):
        t = _trace(("mxu", "fwd", -1.0, 4.0, "compute"))
        att = attribute(t, window=(0.0, 2.0))
        assert att.buckets["compute"] == pytest.approx(2.0)
        assert att.total == pytest.approx(2.0)

    def test_empty_trace(self):
        att = attribute(Trace())
        assert att.total == 0.0
        att = attribute(Trace(), window=(0.0, 5.0))
        assert att.buckets["idle"] == pytest.approx(5.0)

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            attribute(Trace(), window=(1.0, 0.0))

    def test_source_filter(self):
        t = Trace()
        t.record("mxu", "a", 0.0, 1.0, category="compute", source="sim")
        t.record("mxu", "b", 0.0, 2.0, category="compute", source="measured")
        att = attribute(t, window=(0.0, 2.0), source="sim")
        assert att.buckets["compute"] == pytest.approx(1.0)

    def test_fraction(self):
        att = Attribution({"compute": 1.0, "idle": 3.0}, (0.0, 4.0))
        assert att.fraction("compute") == pytest.approx(0.25)


class TestDesTraces:
    @pytest.mark.parametrize(
        "ready,comm,compute_end",
        [
            ([0.0], [1.0], 2.0),                       # fully hidden
            ([0.0, 0.5, 1.0], [0.8, 0.8, 0.8], 1.2),   # queued, partly exposed
            ([0.0, 1.0, 2.0, 3.0], [0.1] * 4, 4.0),    # tiny collectives
            ([2.0], [5.0], 2.0),                       # fully exposed tail
        ],
    )
    def test_buckets_sum_to_step_time(self, ready, comm, compute_end):
        ov = simulate_overlap_schedule(ready, comm, compute_end)
        att = attribute(ov.trace)
        assert att.total == pytest.approx(att.window_seconds, rel=1e-9)
        assert att.window_seconds == pytest.approx(ov.step_seconds, rel=1e-9)

    def test_exposed_matches_overlap_result(self):
        ov = simulate_overlap_schedule(
            [0.0, 0.4, 0.9, 1.1], [0.5, 0.6, 0.2, 0.7], 1.3
        )
        att = attribute(ov.trace)
        assert att.buckets["exposed_comm"] == pytest.approx(
            ov.exposed_comm_seconds, abs=1e-12
        )
        assert att.buckets["hidden_comm"] == pytest.approx(
            ov.hidden_comm_seconds, abs=1e-12
        )


class TestCriticalPath:
    def test_chain_follows_latest_predecessor(self):
        t = _trace(
            ("mxu", "fwd", 0.0, 1.0, "compute"),
            ("mxu", "bwd", 1.0, 1.0, "compute"),
            ("ici", "ar", 2.0, 2.0, "comm"),
        )
        path = critical_path(t)
        assert [s.event.name for s in path] == ["fwd", "bwd", "ar"]
        assert all(s.wait_s == 0.0 for s in path)

    def test_wait_gap_surfaces(self):
        t = _trace(
            ("mxu", "fwd", 0.0, 1.0, "compute"),
            ("ici", "ar", 2.5, 1.0, "comm"),
        )
        path = critical_path(t)
        assert [s.event.name for s in path] == ["fwd", "ar"]
        assert path[-1].wait_s == pytest.approx(1.5)

    def test_same_actor_contact_preferred(self):
        t = _trace(
            ("ici", "ar0", 0.0, 1.0, "comm"),
            ("mxu", "bwd", 0.0, 1.0, "compute"),
            ("ici", "ar1", 1.0, 1.0, "comm"),
        )
        path = critical_path(t)
        # Both end at ar1.start; the serialized ici channel wins the tie.
        assert [s.event.name for s in path] == ["ar0", "ar1"]

    def test_path_time_bounded_by_makespan(self):
        ov = simulate_overlap_schedule(
            [0.0, 0.3, 0.7], [0.5, 0.5, 0.5], 1.0
        )
        result = analyze(ov.trace)
        assert result.path_seconds <= result.makespan + 1e-12
        assert result.path[-1].event.end == pytest.approx(result.makespan)

    def test_empty(self):
        assert critical_path(Trace()) == ()

    def test_zero_duration_ties_terminate(self):
        # Two zero-duration events at one timestamp satisfy each other's
        # predecessor condition (end <= start + eps); the walk must not
        # ping-pong between them forever.
        t = _trace(
            ("a", "tick", 1.0, 0.0, "compute"),
            ("b", "tock", 1.0, 0.0, "compute"),
        )
        path = critical_path(t)
        assert 1 <= len(path) <= 2
        assert path[-1].event.start == 1.0

    def test_zero_duration_ties_inside_longer_chain(self):
        # Zero-duration markers between real spans must not trap the walk
        # or break the chain through them.
        t = _trace(
            ("mxu", "fwd", 0.0, 1.0, "compute"),
            ("ctrl", "mark0", 1.0, 0.0, "barrier"),
            ("ctrl", "mark1", 1.0, 0.0, "barrier"),
            ("ici", "ar", 1.0, 2.0, "comm"),
        )
        path = critical_path(t)
        assert path[-1].event.name == "ar"
        assert len(path) <= 4
        # An event appears at most once on the chain.
        names = [s.event.name for s in path]
        assert len(names) == len(set(names))


class TestSlack:
    def test_slack_identifies_idle_actor(self):
        t = _trace(
            ("mxu", "fwd", 0.0, 4.0, "compute"),
            ("ici", "ar", 3.0, 1.0, "comm"),
        )
        slack = device_slack(t)
        assert slack["mxu"] == pytest.approx(0.0)
        assert slack["ici"] == pytest.approx(3.0)

    def test_empty(self):
        assert device_slack(Trace()) == {}


class TestAnalyzeAndFormat:
    def test_to_json_round_trips(self):
        import json

        ov = simulate_overlap_schedule([0.0, 0.5], [0.4, 0.9], 1.0)
        result = analyze(ov.trace)
        blob = json.loads(json.dumps(result.to_json()))
        assert blob["makespan_seconds"] == pytest.approx(ov.step_seconds)
        total = sum(blob["attribution"]["buckets"].values())
        assert total == pytest.approx(blob["attribution"]["window_seconds"], rel=1e-9)
        assert blob["critical_path"]
        assert "slack" in blob

    def test_format_renders(self):
        ov = simulate_overlap_schedule([0.0], [2.0], 1.0)
        text = format_result(analyze(ov.trace))
        assert "exposed_comm" in text
        assert "critical path" in text
        assert "per-actor slack" in text

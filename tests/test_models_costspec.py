"""Cost-spec sanity tests for the six MLPerf benchmarks."""

import pytest

from repro.models import (
    bert_large_spec,
    dlrm_spec,
    maskrcnn_spec,
    resnet50_spec,
    ssd_spec,
    transformer_big_spec,
)
from repro.models.costspec import LayerCost, ModelCostSpec

ALL_SPECS = [
    resnet50_spec(),
    bert_large_spec(),
    transformer_big_spec(),
    ssd_spec(),
    maskrcnn_spec(),
    dlrm_spec(),
]


class TestSpecsSanity:
    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.name)
    def test_positive_accounting(self, spec):
        assert spec.params > 0
        assert spec.flops_per_example > 0
        assert spec.dataset_examples > 0
        assert spec.reference_global_batch >= 256

    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.name)
    def test_layer_fractions_bounded(self, spec):
        total = sum(l.flops_fraction for l in spec.layers)
        assert total <= 1.0 + 1e-9

    def test_resnet_parameters(self):
        spec = resnet50_spec()
        assert spec.params == pytest.approx(25.6e6)
        assert spec.optimizer == "lars"
        assert spec.gradient_bytes == pytest.approx(25.6e6 * 4)

    def test_bert_uses_bf16_gradients(self):
        spec = bert_large_spec()
        assert spec.grad_wire_dtype_bytes == 2
        assert spec.gradient_bytes == pytest.approx(334e6 * 2)

    def test_transformer_model_parallel_limits(self):
        spec = transformer_big_spec()
        assert spec.max_model_parallel_cores == 4
        assert not spec.supports_large_batch_scaling
        assert spec.activation_allreduce_bytes_per_example > 0

    def test_segmentation_models_spatial(self):
        for spec in (ssd_spec(), maskrcnn_spec()):
            assert spec.max_model_parallel_cores == 8
            assert any(l.spatially_partitionable for l in spec.layers)
            assert 0.0 < spec.unpartitionable_fraction() < 0.5

    def test_dlrm_embedding_traffic(self):
        spec = dlrm_spec()
        assert spec.embedding_hbm_bytes_per_example > 0
        # Dense params are tiny; embeddings dominate memory, not gradients.
        assert spec.params < 10e6

    def test_steps_per_epoch(self):
        spec = resnet50_spec()
        assert spec.steps_per_epoch(65536) == pytest.approx(1281167 / 65536)
        with pytest.raises(ValueError):
            spec.steps_per_epoch(0)


class TestValidation:
    def test_negative_params_rejected(self):
        with pytest.raises(ValueError):
            ModelCostSpec(
                name="bad", params=-1, flops_per_example=1,
                dataset_examples=1, eval_examples=1, quality_target="x",
                reference_global_batch=1,
            )

    def test_layer_fraction_overflow(self):
        with pytest.raises(ValueError):
            ModelCostSpec(
                name="bad", params=1, flops_per_example=1,
                dataset_examples=1, eval_examples=1, quality_target="x",
                reference_global_batch=1,
                layers=(LayerCost("a", 0.7), LayerCost("b", 0.7)),
            )

    def test_layer_cost_validation(self):
        with pytest.raises(ValueError):
            LayerCost("a", 1.5)
        with pytest.raises(ValueError):
            LayerCost("a", 0.5, height=0)

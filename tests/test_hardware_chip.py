"""Chip and host specification tests."""

import pytest

from repro.hardware.chip import (
    ChipSpec,
    GPU_A100,
    GPU_V100,
    HostSpec,
    TPU_V2,
    TPU_V3,
    TPU_V4,
    chip_spec,
)


class TestChipSpec:
    def test_tpu_v3_basics(self):
        assert TPU_V3.cores == 2
        assert TPU_V3.peak_matmul_flops == pytest.approx(123e12)
        assert TPU_V3.hbm_bytes == 32 * 2**30
        assert TPU_V3.routing_table_entries == 1024
        assert TPU_V3.num_links == 4

    def test_generations_increase_flops(self):
        assert TPU_V2.peak_matmul_flops < TPU_V3.peak_matmul_flops
        assert TPU_V3.peak_matmul_flops < TPU_V4.peak_matmul_flops

    def test_gpu_specs_present(self):
        assert GPU_V100.cores == 1
        assert GPU_A100.peak_matmul_flops > GPU_V100.peak_matmul_flops

    def test_per_core_flops(self):
        assert TPU_V3.per_core_matmul_flops == pytest.approx(61.5e12)

    def test_matmul_time_scales_with_efficiency(self):
        full = TPU_V3.matmul_time(1e12, efficiency=1.0)
        half = TPU_V3.matmul_time(1e12, efficiency=0.5)
        assert half == pytest.approx(2 * full)

    def test_matmul_time_rejects_bad_efficiency(self):
        with pytest.raises(ValueError):
            TPU_V3.matmul_time(1e12, efficiency=0.0)
        with pytest.raises(ValueError):
            TPU_V3.matmul_time(1e12, efficiency=1.5)

    def test_vector_time(self):
        assert TPU_V3.vector_time(4e12) == pytest.approx(1.0)

    def test_hbm_time(self):
        assert TPU_V3.hbm_time(900e9) == pytest.approx(1.0)

    def test_invalid_chip_fields_rejected(self):
        with pytest.raises(ValueError):
            ChipSpec("bad", 0, 1, 1, 1, 1, 1)
        with pytest.raises(ValueError):
            ChipSpec("bad", 2, -1, 1, 1, 1, 1)

    def test_registry_lookup(self):
        assert chip_spec("tpu-v3") is TPU_V3
        assert chip_spec("gpu-a100") is GPU_A100

    def test_registry_unknown_name(self):
        with pytest.raises(KeyError, match="unknown chip"):
            chip_spec("tpu-v99")


class TestHostSpec:
    def test_defaults(self):
        host = HostSpec()
        assert host.chips_per_host == 8
        assert host.cpu_cores == 96

    def test_invalid_chips_per_host(self):
        with pytest.raises(ValueError):
            HostSpec(chips_per_host=0)

"""End-to-end MLPerf time model tests."""

import pytest

from repro.core.end_to_end import EndToEndModel, num_evals_for
from repro.core.convergence import ConvergenceModel
from repro.core.planner import plan_parallelism
from repro.frameworks.jax import MultiClientJAX
from repro.frameworks.tensorflow import SingleClientTF
from repro.models import bert_large_spec, resnet50_spec


class TestEndToEnd:
    def test_total_composition(self):
        spec = resnet50_spec()
        model = EndToEndModel(spec)
        r = model.run(plan_parallelism(spec, 256).config)
        assert r.total_seconds == pytest.approx(
            r.steps * r.step.total + r.eval_seconds
        )
        assert r.total_minutes == pytest.approx(r.total_seconds / 60)

    def test_more_chips_faster(self):
        spec = resnet50_spec()
        model = EndToEndModel(spec)
        small = model.run(plan_parallelism(spec, 256).config)
        large = model.run(plan_parallelism(spec, 4096).config)
        assert large.total_seconds < small.total_seconds

    def test_throughput(self):
        spec = resnet50_spec()
        r = EndToEndModel(spec).run(plan_parallelism(spec, 1024).config)
        assert r.throughput_examples_per_second == pytest.approx(
            r.config.global_batch / r.step.total
        )

    def test_framework_changes_init_not_steps(self):
        spec = bert_large_spec()
        cfg = plan_parallelism(spec, 1024).config
        tf = EndToEndModel(spec, framework=SingleClientTF()).run(cfg)
        jax = EndToEndModel(spec, framework=MultiClientJAX()).run(cfg)
        assert tf.steps == jax.steps
        assert tf.step.total == pytest.approx(jax.step.total)
        assert tf.init_seconds != jax.init_seconds

    def test_eval_count_rules(self):
        resnet = resnet50_spec()
        conv = ConvergenceModel(resnet)
        # 88 epochs / eval-every-4 => 22 evals at batch 65536.
        assert num_evals_for(resnet, conv, 65536) == 22
        bert = bert_large_spec()
        bconv = ConvergenceModel(bert)
        assert num_evals_for(bert, bconv, 8192) == 10  # 5M / 500k

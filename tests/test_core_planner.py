"""Parallelism-planner tests: reproduce the paper's per-model choices."""

import pytest

from repro.core.planner import plan_parallelism
from repro.models import (
    bert_large_spec,
    dlrm_spec,
    maskrcnn_spec,
    resnet50_spec,
    ssd_spec,
    transformer_big_spec,
)


class TestPaperChoices:
    def test_resnet_pure_dp_at_multipod(self):
        """Section 4.2: data parallelism at batch 65536 on 4096 chips."""
        plan = plan_parallelism(resnet50_spec(), 4096)
        assert plan.config.mp_cores == 1
        assert plan.config.global_batch == 65536

    def test_resnet_batch_trajectory(self):
        """Figure 6: 256/chip at small scale, 16/chip at 4096."""
        assert plan_parallelism(resnet50_spec(), 16).config.global_batch == 4096
        assert plan_parallelism(resnet50_spec(), 4096).config.batch_per_core == 8

    def test_bert_pure_dp(self):
        """Section 4.1 / Figure 8: batch 8192 (2/chip) at 4096 chips."""
        plan = plan_parallelism(bert_large_spec(), 4096)
        assert plan.config.mp_cores == 1
        assert plan.config.global_batch == 8192

    def test_transformer_needs_mp_at_multipod(self):
        """Section 4.3: 4-way model parallelism, batch fixed at 2048."""
        plan = plan_parallelism(transformer_big_spec(), 4096)
        assert plan.config.global_batch == 2048
        assert plan.config.mp_cores == 4
        assert not plan.config.spatial_partitioning

    def test_transformer_dp_at_1024(self):
        plan = plan_parallelism(transformer_big_spec(), 1024)
        assert plan.config.mp_cores == 1

    def test_ssd_spatial_mp_at_8192_cores(self):
        """Section 4.4: batch 4096, spatial partitioning at 8192 cores."""
        plan = plan_parallelism(ssd_spec(), 4096)
        assert plan.config.global_batch == 4096
        assert plan.config.mp_cores == 2
        assert plan.config.spatial_partitioning

    def test_maskrcnn_dp_until_128_cores(self):
        """Section 4.5: DP up to 128 cores, then model parallelism."""
        assert plan_parallelism(maskrcnn_spec(), 64).config.mp_cores == 1
        plan512 = plan_parallelism(maskrcnn_spec(), 512)
        assert plan512.config.mp_cores == 4  # 1024 cores / batch 256
        assert plan512.config.spatial_partitioning

    def test_dlrm_small_slice(self):
        plan = plan_parallelism(dlrm_spec(), 256)
        assert plan.config.global_batch == 65536
        assert plan.config.mp_cores == 1


class TestMechanics:
    def test_rationale_present(self):
        plan = plan_parallelism(resnet50_spec(), 4096)
        assert "batch" in plan.rationale

    def test_unknown_benchmark(self):
        import dataclasses

        spec = dataclasses.replace(resnet50_spec(), name="alexnet")
        with pytest.raises(KeyError):
            plan_parallelism(spec, 16)

    def test_invalid_chips(self):
        with pytest.raises(ValueError):
            plan_parallelism(resnet50_spec(), 0)

    def test_mp_capped_at_model_limit(self):
        """A slice far oversized for MaskRCNN caps at 8 MP cores."""
        plan = plan_parallelism(maskrcnn_spec(), 4096)
        assert plan.config.mp_cores <= 8
        assert "oversized" in plan.rationale or "model parallelism" in plan.rationale


class TestSearchedSharding:
    def test_default_is_annotated(self):
        plan = plan_parallelism(ssd_spec(), 4096)
        assert plan.config.sharding_source == "annotated"
        assert plan.partition_plan is None

    def test_search_backs_mp_layouts(self):
        plan = plan_parallelism(ssd_spec(), 4096, search_sharding=True)
        assert plan.config.mp_cores == 2
        assert plan.config.sharding_source == "searched"
        assert plan.partition_plan is not None
        assert plan.partition_plan.num_shards == 2
        assert "sharding searched" in plan.rationale

    def test_search_skipped_for_pure_dp(self):
        plan = plan_parallelism(resnet50_spec(), 4096, search_sharding=True)
        assert plan.config.sharding_source == "annotated"
        assert plan.partition_plan is None

    def test_searched_plans_are_seed_stable(self):
        a = plan_parallelism(transformer_big_spec(), 2048, search_sharding=True)
        b = plan_parallelism(transformer_big_spec(), 2048, search_sharding=True)
        assert a.partition_plan is not None
        assert a.partition_plan.spec == b.partition_plan.spec
        assert a.partition_plan.total_seconds == b.partition_plan.total_seconds

    def test_invalid_sharding_source_rejected(self):
        from repro.core.strategy import ParallelismConfig

        with pytest.raises(ValueError, match="sharding_source"):
            ParallelismConfig(
                num_chips=4, global_batch=8, sharding_source="guessed"
            )

"""Telemetry subsystem tests: registry, tracer, report, and the
instrumented trainer/runtime hot paths."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import telemetry
from repro.sim.trace import Trace
from repro.telemetry.registry import DEFAULT_TIME_BUCKETS, MetricsRegistry
from repro.telemetry.tracer import Tracer


@pytest.fixture(autouse=True)
def _clean_telemetry():
    """Each test starts from empty global metrics/trace and enabled state."""
    telemetry.enable()
    telemetry.reset()
    yield
    telemetry.enable()
    telemetry.reset()


class TestRegistry:
    def test_counter_label_fanout(self):
        m = MetricsRegistry()
        m.counter("collective_bytes", op="reduce_scatter", axis="y").inc(100)
        m.counter("collective_bytes", op="reduce_scatter", axis="x").inc(40)
        m.counter("collective_bytes", axis="y", op="reduce_scatter").inc(1)
        assert m.value("collective_bytes", op="reduce_scatter", axis="y") == 101
        assert m.value("collective_bytes", op="reduce_scatter", axis="x") == 40
        assert m.total("collective_bytes") == 141
        snap = m.snapshot()
        assert len(snap["collective_bytes"]["values"]) == 2

    def test_label_order_is_canonical(self):
        m = MetricsRegistry()
        a = m.counter("c", x="1", y="2")
        b = m.counter("c", y="2", x="1")
        assert a is b

    def test_counter_rejects_negative(self):
        m = MetricsRegistry()
        with pytest.raises(ValueError):
            m.counter("c").inc(-1)

    def test_kind_mismatch_rejected(self):
        m = MetricsRegistry()
        m.counter("c").inc()
        with pytest.raises(ValueError):
            m.gauge("c")

    def test_gauge(self):
        m = MetricsRegistry()
        g = m.gauge("hbm", device="0,0")
        g.set(5.0)
        g.inc(2.0)
        g.dec(1.0)
        assert m.value("hbm", device="0,0") == 6.0

    def test_label_cardinality_guard(self):
        m = MetricsRegistry(max_children=3)
        for i in range(3):
            m.counter("bytes", device=str(i)).inc(1)
        # Saturated: new label sets collapse into the shared overflow child.
        m.counter("bytes", device="3").inc(5)
        m.counter("bytes", device="4").inc(7)
        assert m.value("bytes", overflow="true") == 12
        assert m.value(
            "telemetry_label_overflow", metric="bytes"
        ) == 2
        # Established children keep working past saturation.
        m.counter("bytes", device="1").inc(10)
        assert m.value("bytes", device="1") == 11
        # The family never grows past max_children + the overflow child.
        snap = m.snapshot()
        assert len(snap["bytes"]["values"]) <= 3 + 1

    def test_label_guard_spares_unlabeled_child(self):
        m = MetricsRegistry(max_children=1)
        m.counter("c", x="a").inc()
        # The unlabeled child is the family's identity series, never routed
        # to overflow.
        m.counter("c").inc(3)
        assert m.value("c") == 3

    def test_label_guard_overflow_counter_does_not_recurse(self):
        m = MetricsRegistry(max_children=1)
        for i in range(5):
            m.counter("c", x=str(i)).inc()
        # telemetry_label_overflow itself saturates without re-counting.
        assert m.total("telemetry_label_overflow") == 4

    def test_scalar_children_snapshot(self):
        m = MetricsRegistry()
        m.counter("bytes", op="ar").inc(7)
        m.gauge("loss").set(0.25)
        m.histogram("lat").observe(1.0)  # histograms excluded
        children = m.scalar_children()
        assert ("bytes", (("op", "ar"),), 7.0) in children
        assert ("loss", (), 0.25) in children
        assert all(name != "lat" for name, _, _ in children)

    def test_histogram_bucket_edges(self):
        m = MetricsRegistry()
        h = m.histogram("lat", buckets=[1.0, 10.0, 100.0])
        # le semantics: a value equal to an upper bound lands in that bucket.
        h.observe(0.5)    # <= 1.0
        h.observe(1.0)    # <= 1.0 (edge)
        h.observe(1.0001) # <= 10.0
        h.observe(10.0)   # <= 10.0 (edge)
        h.observe(100.0)  # <= 100.0 (edge)
        h.observe(1e6)    # +inf overflow
        assert h.counts == [2, 2, 1, 1]
        assert h.count == 6
        assert h.sum == pytest.approx(0.5 + 1.0 + 1.0001 + 10.0 + 100.0 + 1e6)
        assert h.mean == pytest.approx(h.sum / 6)

    def test_histogram_default_buckets(self):
        m = MetricsRegistry()
        h = m.histogram("t")
        assert h.buckets == DEFAULT_TIME_BUCKETS

    def test_histogram_bucket_respec_rejected(self):
        m = MetricsRegistry()
        m.histogram("t", buckets=[1.0, 2.0])
        with pytest.raises(ValueError):
            m.histogram("t", buckets=[1.0, 3.0])
        with pytest.raises(ValueError):
            m.histogram("u", buckets=[2.0, 1.0])

    def test_snapshot_json_round_trip(self):
        m = MetricsRegistry()
        m.counter("bytes", op="ag").inc(7)
        m.histogram("s", buckets=[1.0]).observe(0.5)
        decoded = json.loads(m.to_json())
        assert decoded["bytes"]["type"] == "counter"
        assert decoded["bytes"]["values"][0] == {"labels": {"op": "ag"}, "value": 7.0}
        assert decoded["s"]["values"][0]["counts"] == [1, 0]

    def test_reset(self):
        m = MetricsRegistry()
        m.counter("c").inc(3)
        m.reset()
        assert m.value("c") == 0.0
        assert m.snapshot() == {}

    def test_collector_runs_at_snapshot(self):
        m = MetricsRegistry()
        m.register_collector(lambda reg: reg.gauge("pulled").set(42.0))
        snap = m.snapshot()
        assert snap["pulled"]["values"][0]["value"] == 42.0


class TestTracer:
    def _fake_clock(self, times):
        it = iter(times)
        return lambda: next(it)

    def test_span_records_event(self):
        clock = self._fake_clock([0.0, 1.0, 3.5])
        tr = Tracer(clock=clock, actor="dev0")
        with tr.span("all_reduce", category="comm"):
            pass
        (e,) = tr.trace.events
        assert (e.actor, e.name, e.category) == ("dev0", "all_reduce", "comm")
        assert e.start == pytest.approx(1.0)
        assert e.duration == pytest.approx(2.5)
        assert e.source == "measured"

    def test_nesting(self):
        clock = self._fake_clock([0.0, 1.0, 2.0, 3.0, 4.0])
        tr = Tracer(clock=clock)
        with tr.span("step", category="step"):
            assert tr.depth == 1
            with tr.span("collective", category="comm"):
                assert tr.depth == 2
        assert tr.depth == 0
        inner, outer = tr.trace.events  # children close (record) first
        assert inner.name == "collective"
        assert outer.name == "step"
        # Child interval nested within the parent interval.
        assert outer.start <= inner.start
        assert inner.end <= outer.end

    def test_disabled_span_is_noop(self):
        tr = Tracer()
        telemetry.disable()
        span = tr.span("x")
        with span:
            pass
        assert tr.trace.events == []
        telemetry.enable()
        assert tr.span("x") is not span  # live span once re-enabled

    def test_disabled_context_manager_restores(self):
        assert telemetry.enabled
        with telemetry.disabled():
            assert not telemetry.enabled
        assert telemetry.enabled

    def test_reset_restarts_epoch(self):
        clock = self._fake_clock([0.0, 10.0, 11.0, 12.0])
        tr = Tracer(clock=clock)
        tr.reset()  # epoch -> 10.0
        with tr.span("a"):
            pass
        (e,) = tr.trace.events
        assert e.start == pytest.approx(1.0)


class TestTraceMergeAndExport:
    def test_merge_retags_source(self):
        sim = Trace()
        sim.record("torus", "rs", 0.0, 1.0, "comm")
        measured = Trace()
        measured.record("trainer", "rs", 0.0, 1.2, "comm", source="measured")
        merged = Trace().merge(measured).merge(sim, source="sim")
        assert merged.sources() == ["measured", "sim"]
        assert len(merged.events) == 2
        # merge without retag keeps original sources
        again = Trace().merge(merged)
        assert again.sources() == ["measured", "sim"]

    def test_busy_time_clamps_overlap(self):
        t = Trace()
        t.record("a", "parent", 0.0, 4.0)
        t.record("a", "child", 1.0, 2.0)   # fully inside parent
        t.record("a", "tail", 3.0, 3.0)    # partial overlap
        t.record("a", "late", 10.0, 1.0)   # disjoint
        assert t.busy_time("a") == pytest.approx(7.0)  # [0,6] + [10,11]
        assert t.busy_time("b") == 0.0

    def test_utilization_never_exceeds_one(self):
        t = Trace()
        t.record("a", "x", 0.0, 2.0)
        t.record("a", "y", 0.0, 2.0)
        assert t.utilization("a") == pytest.approx(1.0)

    def test_chrome_trace_round_trip(self):
        t = Trace()
        t.record("chip0", "step", 0.001, 0.002, "compute", source="measured")
        t.record("torus", "rs", 0.0, 0.004, "comm", source="sim")
        events = json.loads(json.dumps(t.to_chrome_trace()))
        meta = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        assert {m["args"]["name"] for m in meta} == {"measured", "sim"}
        pid_of = {m["args"]["name"]: m["pid"] for m in meta}
        by_name = {e["name"]: e for e in spans}
        assert by_name["step"]["pid"] == pid_of["measured"]
        assert by_name["rs"]["pid"] == pid_of["sim"]
        assert by_name["step"]["args"] == {"actor": "chip0", "category": "compute"}
        assert by_name["step"]["ts"] == pytest.approx(1000.0)
        assert by_name["step"]["dur"] == pytest.approx(2000.0)

    def test_chrome_trace_default_source_lane(self):
        t = Trace()
        t.record("a", "x", 0.0, 1.0)
        events = t.to_chrome_trace()
        assert events[0]["ph"] == "M"
        assert events[0]["args"]["name"] == "trace"
        assert events[1]["pid"] == 0


class TestInstrumentedTrainers:
    def _train(self, trainer_cls, **kw):
        from repro.models.mlp import MLP
        from repro.optim.sgd import SGDMomentum

        rng = np.random.default_rng(0)
        model = MLP([8, 16, 4])
        trainer = trainer_cls(model, SGDMomentum(0.05), **kw)
        trainer.init(rng)
        x = rng.standard_normal((16, 8))
        labels = rng.integers(0, 4, size=16)

        def batches():
            while True:
                yield x, labels

        trainer.train(batches(), steps=2)
        return trainer

    def test_data_parallel_span_categories_and_bytes(self):
        from repro.core.data_parallel import DataParallelTrainer
        from repro.runtime.collectives import padded_chunk_layout

        trainer = self._train(DataParallelTrainer, dp_x=2, dp_y=2)
        cats = {e.category for e in telemetry.tracer.trace.events}
        assert {"step", "input", "compute", "comm", "update"} <= cats
        names = {e.name for e in telemetry.tracer.trace.events}
        assert {"train_step", "split", "forward_backward", "collective",
                "update", "two_phase_all_reduce"} <= names
        m = telemetry.metrics
        assert m.value("train_steps", trainer="DataParallelTrainer") == 2
        # Exact traffic for the known mesh/bucket size: 2x2 grid, f64 wire.
        size = trainer._bucket.size
        _, y_chunk = padded_chunk_layout(2, size)
        _, x_chunk = padded_chunk_layout(2, y_chunk)
        steps = 2
        expected_y = steps * 2 * 1 * (2 * y_chunk) * 8
        expected_x = steps * 2 * 1 * (2 * x_chunk) * 8
        assert m.value(
            "collective_bytes", op="reduce_scatter", axis="y", policy="f64"
        ) == expected_y
        assert m.value(
            "collective_bytes", op="reduce_scatter", axis="x", policy="f64"
        ) == expected_x
        assert m.value("collective_bytes", op="all_gather", axis="x", policy="f64") > 0
        hist = m.histogram("step_seconds", trainer="DataParallelTrainer")
        assert hist.count == 2
        assert hist.sum > 0

    def test_wus_trainer_snapshot(self):
        """Acceptance: a WUS run yields nonzero collective_bytes,
        bucket_flatten_seconds, and per-step histograms."""
        from repro.core.weight_update_sharding import WeightUpdateShardedTrainer

        self._train(WeightUpdateShardedTrainer, num_replicas=8)
        m = telemetry.metrics
        assert m.total("collective_bytes") > 0
        assert m.value("bucket_flatten_seconds") > 0
        assert m.value("bucket_segment_cache_hits") > 0
        hist = m.histogram("step_seconds", trainer="WeightUpdateShardedTrainer")
        assert hist.count == 2
        names = {e.name for e in telemetry.tracer.trace.events}
        assert {"train_step", "wus_update", "sharded_update",
                "ring_reduce_scatter", "ring_all_gather"} <= names

    def test_disabled_training_records_nothing(self):
        from repro.core.data_parallel import DataParallelTrainer

        with telemetry.disabled():
            self._train(DataParallelTrainer, dp_x=2, dp_y=1)
        # Only the pull-style cache gauges (snapshot-time collectors) may
        # appear; no per-call metric was recorded.
        families = {
            name for name in telemetry.metrics.snapshot()
            if not name.startswith(
                ("padding_layout_cache", "scratch_pool_cache")
            )
        }
        assert families == set()
        assert telemetry.tracer.trace.events == []


class TestInstrumentedRuntime:
    def test_mesh_traffic_and_allreduce_span(self):
        from repro.runtime.mesh import VirtualMesh

        mesh = VirtualMesh(2, 2)
        mesh.put("w", (0, 0), np.ones(4, dtype=np.float32))
        mesh.put_replicated("g", np.ones(8, dtype=np.float32))
        mesh.all_reduce("g")
        m = telemetry.metrics
        assert m.value("mesh_put_bytes", device=(0, 0)) >= 16
        assert m.value("mesh_put_bytes", device="replicated") == 4 * 8 * 4
        assert m.total("mesh_get_bytes") > 0
        assert m.value("mesh_allreduce_launches", schedule="2d") == 1
        assert "mesh_all_reduce" in {e.name for e in telemetry.tracer.trace.events}

    def test_sim_schedule_phase_attribution(self):
        from repro.comm.schedule import simulate_ring_reduce_scatter
        from repro.hardware.rings import y_ring
        from repro.hardware.topology import TorusMesh

        mesh = TorusMesh(1, 4, wrap_y=True)
        modeled = simulate_ring_reduce_scatter(mesh, y_ring(mesh, 0), 1e6)
        m = telemetry.metrics
        assert m.value("sim_phase_modeled_seconds", phase="reduce_scatter") == (
            pytest.approx(modeled)
        )
        assert m.value("sim_phase_wall_seconds", phase="reduce_scatter") > 0
        assert m.value("sim_phase_runs", phase="reduce_scatter") == 1

    def test_input_pipeline_stall_counters(self):
        from repro.input_pipeline.host import simulate_host_pipeline
        from repro.input_pipeline.stages import PipelineStage

        slow = PipelineStage("slow", lambda rng: 1.0)
        result = simulate_host_pipeline(
            [slow], batch_per_host=2, device_step_seconds=1e-3,
            steps=3, workers=1, prefetch_batches=1.0,
        )
        m = telemetry.metrics
        assert m.value("input_prefetch_stall_seconds") == pytest.approx(
            result.stall_seconds
        )
        assert m.value("input_device_steps") == 3
        assert m.value("input_stall_fraction") == pytest.approx(
            result.stall_fraction
        )

    def test_padding_cache_collector(self):
        from repro.runtime.collectives import ring_all_reduce

        ring_all_reduce([np.ones(10), np.ones(10)])
        snap = telemetry.metrics.snapshot()
        assert "padding_layout_cache_size" in snap
        assert snap["padding_layout_cache_size"]["values"][0]["value"] >= 1


class TestReport:
    def test_breakdown_and_chrome_merge(self, tmp_path):
        from repro.telemetry import report

        sim_trace = report.demo_run(x_size=4, y_size=2, steps=2)
        text = report.step_breakdown()
        assert "train_step" in text
        assert "collective_bytes" in text
        out = tmp_path / "trace.json"
        report.write_chrome_trace(str(out), sim_trace=sim_trace)
        data = json.loads(out.read_text())
        events = data["traceEvents"]
        lanes = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert lanes == {"measured", "sim"}
        assert any(e["ph"] == "C" for e in events)
        assert any(e["ph"] == "X" and e["name"] == "train_step" for e in events)

    def test_cli_main(self, tmp_path, capsys):
        from repro.telemetry import report

        trace_out = tmp_path / "t.json"
        metrics_out = tmp_path / "m.json"
        rc = report.main([
            "--mesh", "2x2", "--steps", "1",
            "--trace-out", str(trace_out),
            "--metrics-out", str(metrics_out),
        ])
        assert rc == 0
        captured = capsys.readouterr()
        assert "telemetry report" in captured.out
        assert trace_out.exists()
        snap = json.loads(metrics_out.read_text())
        assert snap["collective_bytes"]["type"] == "counter"

    def test_cli_notes_missing_failure_counters_and_exits_zero(
        self, tmp_path, capsys
    ):
        """A run with no chaos/control-plane activity degrades gracefully:
        the report says so instead of erroring, and still exits 0."""
        from repro.telemetry import report

        rc = report.main([
            "--mesh", "2x2", "--steps", "1",
            "--trace-out", str(tmp_path / "t.json"),
        ])
        assert rc == 0
        captured = capsys.readouterr()
        assert "no resilience_* or controlplane_* counters" in captured.out

    def test_cli_notes_missing_service_counters_and_exits_zero(
        self, tmp_path, capsys
    ):
        """A run with no simulation-service activity gets the same
        graceful note (exit 0) the control-plane counters get."""
        from repro.telemetry import report

        rc = report.main([
            "--mesh", "2x2", "--steps", "1",
            "--trace-out", str(tmp_path / "t.json"),
        ])
        assert rc == 0
        captured = capsys.readouterr()
        assert "no service_* counters" in captured.out
        assert "repro-service load" in captured.out

    def test_breakdown_lists_service_counters_when_present(self):
        """service_* counters recorded by a live service land in the
        headline-counter block of the step breakdown."""
        from repro.service import ServiceConfig, SimJob, SimulationService
        from repro.telemetry import report

        config = ServiceConfig(concurrency=1, queue_depth=4, cache_entries=4)
        with SimulationService(config) as svc:
            svc.submit(SimJob("steptime", {"chips": 64})).result()
            svc.submit(SimJob("steptime", {"chips": 64})).result()  # hit
        text = report.step_breakdown()
        assert "service_submitted" in text
        assert "service_cache_hits" in text

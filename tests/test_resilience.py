"""Fault injection, checkpoint/restore, and elastic chaos-harness tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.comm.schedule import (
    simulate_degraded_all_gather,
    simulate_degraded_reduce_scatter,
    simulate_ring_all_gather,
    simulate_ring_reduce_scatter,
)
from repro.core.data_parallel import DataParallelTrainer
from repro.core.weight_update_sharding import WeightUpdateShardedTrainer
from repro.hardware.rings import degraded_ring, degraded_rings, y_ring
from repro.hardware.topology import TorusMesh
from repro.models.mlp import MLP
from repro.optim.adam import Adam
from repro.optim.lamb import LAMB
from repro.resilience.chaos import ChaosConfig, run_chaos
from repro.resilience.checkpoint import TrainerCheckpoint
from repro.resilience.faults import (
    ChipFailure,
    DeviceLostError,
    FaultPlan,
    LinkDownError,
    LinkFault,
    RetryPolicy,
    StragglerFault,
)
from repro.runtime.mesh import VirtualMesh

LAYERS = [8, 16, 4]


def _trainer(kind: str, n: int, seed: int = 7):
    if kind == "dp":
        t = DataParallelTrainer(MLP(LAYERS), Adam(learning_rate=0.01), dp_x=n)
    else:
        t = WeightUpdateShardedTrainer(
            MLP(LAYERS), LAMB(learning_rate=0.01), num_replicas=n,
            fused=(kind == "wus_fused"),
        )
    t.init(np.random.default_rng(seed))
    return t


def _batch(step: int, batch_size: int = 12):
    rng = np.random.default_rng(40_000 + step)
    x = rng.standard_normal((batch_size, LAYERS[0]))
    labels = rng.integers(0, LAYERS[-1], size=batch_size)
    return x, labels


def _params_equal(a, b) -> bool:
    return set(a) == set(b) and all(np.array_equal(a[k], b[k]) for k in a)


class TestFaultPlan:
    def test_sample_is_seed_deterministic(self):
        kwargs = dict(
            expected_chip_failures=2.0, expected_link_flaps=3.0,
            expected_stragglers=1.0,
        )
        a = FaultPlan.sample(5, (4, 4), 20, **kwargs)
        b = FaultPlan.sample(5, (4, 4), 20, **kwargs)
        c = FaultPlan.sample(6, (4, 4), 20, **kwargs)
        assert a == b
        assert a != c

    def test_step_queries(self):
        plan = FaultPlan(
            chip_failures=(
                ChipFailure((0, 0), at_step=3),
                ChipFailure((1, 1), at_step=5),
            ),
            stragglers=(StragglerFault((2, 0), 4, 2, 3.0),),
        )
        assert plan.chip_failures_at_step(3) == ((0, 0),)
        assert plan.dead_through_step(2) == frozenset()
        assert plan.dead_through_step(5) == {(0, 0), (1, 1)}
        assert plan.straggler_factor((2, 0), 4) == 3.0
        assert plan.straggler_factor((2, 0), 6) == 1.0
        assert plan.straggler_factor((0, 0), 4) == 1.0

    def test_link_factor_window_and_bidirectionality(self):
        plan = FaultPlan(
            link_faults=(LinkFault((0, 0), (0, 1), start=1.0, duration=2.0),),
        )
        assert plan.link_factor((0, 0), (0, 1), 0.5) == 1.0
        assert plan.link_factor((0, 0), (0, 1), 1.5) == 0.0
        assert plan.link_factor((0, 1), (0, 0), 1.5) == 0.0  # bidirectional
        assert plan.link_factor((0, 0), (0, 1), 3.0) == 1.0
        assert plan.next_link_up((0, 0), (0, 1), 1.5) == 3.0
        assert plan.next_link_up((0, 0), (0, 1), 0.0) is None

    def test_chip_failure_requires_a_time_or_step(self):
        with pytest.raises(ValueError):
            ChipFailure((0, 0))

    def test_retry_backoff_is_exponential(self):
        policy = RetryPolicy(backoff_s=1.0, backoff_factor=2.0)
        assert [policy.backoff_after(k) for k in (1, 2, 3)] == [1.0, 2.0, 4.0]


class TestDegradedRings:
    def test_hole_is_hopped_over(self):
        mesh = TorusMesh(4, 4, wrap_x=True, wrap_y=True)
        ring = y_ring(mesh, x=1)
        healed = degraded_ring(ring, {(1, 2)})
        assert healed is not None
        assert (1, 2) not in healed.members
        assert healed.size == ring.size - 1
        # Survivor order is preserved and the segments still route on the mesh.
        assert [m for m in ring.members if tuple(m) != (1, 2)] == list(
            healed.members
        )
        assert len(healed.segments(mesh)) == healed.size

    def test_unaffected_ring_is_returned_as_is(self):
        mesh = TorusMesh(4, 4, wrap_x=True, wrap_y=True)
        ring = y_ring(mesh, x=0)
        assert degraded_ring(ring, {(3, 3)}) is ring

    def test_ring_with_fewer_than_two_survivors_drops(self):
        mesh = TorusMesh(2, 3, wrap_x=True, wrap_y=True)
        ring = y_ring(mesh, x=0)  # three members
        assert degraded_ring(ring, {(0, 0)}) is not None
        assert degraded_ring(ring, {(0, 0), (0, 1)}) is None
        rings = [y_ring(mesh, x=0), y_ring(mesh, x=1)]
        assert len(degraded_rings(rings, {(0, 0), (0, 1)})) == 1


class TestMeshFaults:
    def test_put_coerces_ndarray_subclasses(self):
        # Regression: inputs arriving as ndarray subclasses must land as
        # base-class arrays, not leak subclass behavior into collectives.
        class Tagged(np.ndarray):
            pass

        mesh = VirtualMesh(2, 1)
        mesh.put("w", (0, 0), np.arange(4.0).view(Tagged))
        stored = mesh.get("w", (0, 0))
        assert type(stored) is np.ndarray
        assert np.array_equal(stored, np.arange(4.0))

    def test_dead_device_buffers_unreachable(self):
        mesh = VirtualMesh(2, 2)
        mesh.put_replicated("w", np.ones(3))
        mesh.fail_device((0, 1))
        with pytest.raises(DeviceLostError) as err:
            mesh.get("w", (0, 1))
        assert err.value.devices == ((0, 1),)
        with pytest.raises(DeviceLostError):
            mesh.put("w", (0, 1), np.zeros(3))
        assert mesh.num_alive == 3
        assert (0, 1) in mesh.dead_devices

    def test_collective_on_holey_mesh_raises_by_default(self):
        mesh = VirtualMesh(2, 2)
        mesh.put_replicated("g", np.ones(4))
        mesh.fail_device((1, 0))
        with pytest.raises(DeviceLostError):
            mesh.all_reduce("g")

    def test_healed_collective_sums_survivors(self):
        mesh = VirtualMesh(2, 2)
        for i, device in enumerate(mesh.devices()):
            mesh.put("g", device, np.full(4, float(i + 1)))
        mesh.fail_device((0, 0))  # held 1.0
        mesh.all_reduce("g", dtype_policy="f64", on_fault="heal")
        expected = np.full(4, 2.0 + 3.0 + 4.0)
        for device in mesh.alive_devices():
            assert np.array_equal(mesh.get("g", device), expected)
        # Rejoining drops the dead device's stale buffer.
        mesh.restore_device((0, 0))
        with pytest.raises(KeyError):
            mesh.get("g", (0, 0))

    def test_healed_collective_counts_in_telemetry(self):
        telemetry.enable()
        telemetry.reset()
        try:
            mesh = VirtualMesh(2, 2)
            mesh.put_replicated("g", np.ones(2))
            mesh.fail_device((1, 1))
            mesh.all_reduce("g", on_fault="heal")
            assert telemetry.metrics.value("mesh_degraded_collectives") == 1
            assert telemetry.metrics.value("mesh_device_failures") == 1
        finally:
            telemetry.reset()


class TestDegradedSchedules:
    def _mesh(self):
        return TorusMesh(4, 4, wrap_x=True, wrap_y=True)

    def test_healthy_plan_matches_fault_free_schedule(self):
        mesh = self._mesh()
        rings = [y_ring(mesh, x) for x in range(4)]
        baseline = simulate_ring_reduce_scatter(mesh, rings, 1e6)
        result = simulate_degraded_reduce_scatter(mesh, rings, 1e6, FaultPlan())
        assert result.seconds == baseline
        assert result.retries == 0
        assert result.degraded_transfers == 0
        assert result.healed_rings == 4
        assert result.dropped_rings == 0

    def test_dead_chip_heals_ring_and_slows_schedule(self):
        mesh = self._mesh()
        ring = y_ring(mesh, x=0)
        plan = FaultPlan(chip_failures=(ChipFailure((0, 2), at_time=0.0),),)
        result = simulate_degraded_reduce_scatter(mesh, ring, 1e6, plan)
        assert result.dead_chips == ((0, 2),)
        assert result.healed_rings == 1
        assert result.seconds > 0.0

    def test_link_flap_retries_then_recovers(self):
        mesh = self._mesh()
        ring = y_ring(mesh, x=0)
        baseline = simulate_ring_reduce_scatter(mesh, ring, 1e6)
        flap = LinkFault((0, 0), (0, 1), start=0.0, duration=2e-4)
        result = simulate_degraded_reduce_scatter(
            mesh, ring, 1e6, FaultPlan(link_faults=(flap,)),
            policy=RetryPolicy(timeout_s=1e-4, max_attempts=10, backoff_s=1e-4),
        )
        assert result.retries > 0
        assert result.seconds > baseline

    def test_permanent_outage_exhausts_retries(self):
        mesh = self._mesh()
        ring = y_ring(mesh, x=0)
        outage = LinkFault((0, 0), (0, 1), start=0.0, duration=1e9)
        with pytest.raises(LinkDownError) as err:
            simulate_degraded_reduce_scatter(
                mesh, ring, 1e6, FaultPlan(link_faults=(outage,)),
                policy=RetryPolicy(max_attempts=3),
            )
        assert err.value.attempts == 3

    def test_degraded_link_slows_without_retries(self):
        mesh = self._mesh()
        ring = y_ring(mesh, x=0)
        baseline = simulate_ring_all_gather(mesh, ring, 1e6)
        slow = LinkFault((0, 0), (0, 1), start=0.0, duration=1e9, factor=0.5)
        result = simulate_degraded_all_gather(
            mesh, ring, 1e6, FaultPlan(link_faults=(slow,))
        )
        assert result.retries == 0
        assert result.degraded_transfers > 0
        assert result.seconds > baseline


class TestCheckpointRoundTrip:
    @pytest.mark.parametrize("kind", ["dp", "wus_fused", "wus_unfused"])
    def test_interrupt_restore_resume_is_bit_identical(self, kind):
        uninterrupted = _trainer(kind, 4)
        for step in range(8):
            uninterrupted.step(*_batch(step))

        interrupted = _trainer(kind, 4)
        for step in range(3):
            interrupted.step(*_batch(step))
        ckpt = interrupted.save_checkpoint()
        resumed = _trainer(kind, 4, seed=99)  # different init: must not matter
        resumed.restore_checkpoint(ckpt)
        for step in range(3, 8):
            resumed.step(*_batch(step))
        assert _params_equal(resumed.params, uninterrupted.params)

    def test_checkpoint_is_a_snapshot(self):
        trainer = _trainer("wus_fused", 2)
        ckpt = trainer.save_checkpoint()
        before = {k: v.copy() for k, v in ckpt.params.items()}
        trainer.step(*_batch(0))
        assert _params_equal(ckpt.params, before)

    def test_npz_round_trip(self, tmp_path):
        trainer = _trainer("wus_unfused", 3)
        trainer.step(*_batch(0))
        ckpt = trainer.save_checkpoint()
        path = str(tmp_path / "ckpt.npz")
        ckpt.save(path)
        loaded = TrainerCheckpoint.load(path)
        assert loaded.step_index == ckpt.step_index
        assert loaded.trainer == "WeightUpdateShardedTrainer"
        assert _params_equal(loaded.params, ckpt.params)
        for name, slots in ckpt.opt_state.items():
            for slot, arr in slots.items():
                assert np.array_equal(loaded.opt_state[name][slot], arr)

    def test_checkpoint_metrics_pinned(self):
        telemetry.enable()
        telemetry.reset()
        try:
            trainer = _trainer("dp", 2)
            ckpt = trainer.save_checkpoint()
            trainer.save_checkpoint()
            m = telemetry.metrics
            assert m.value(
                "resilience_checkpoints", trainer="DataParallelTrainer"
            ) == 2
            assert m.value(
                "resilience_checkpoint_bytes", trainer="DataParallelTrainer"
            ) == 2 * ckpt.nbytes
        finally:
            telemetry.reset()


class TestCheckpointProperties:
    """Hypothesis: save -> restore -> resume == uninterrupted, any shape."""

    @given(
        dp_x=st.integers(1, 3), dp_y=st.integers(1, 2),
        interrupt=st.integers(0, 3),
    )
    @settings(max_examples=10, deadline=None)
    def test_data_parallel_any_mesh_shape(self, dp_x, dp_y, interrupt):
        def make():
            t = DataParallelTrainer(
                MLP(LAYERS), Adam(learning_rate=0.01), dp_x=dp_x, dp_y=dp_y
            )
            t.init(np.random.default_rng(3))
            return t

        steps = 5
        uninterrupted = make()
        for step in range(steps):
            uninterrupted.step(*_batch(step))
        source = make()
        for step in range(interrupt):
            source.step(*_batch(step))
        resumed = make()
        resumed.restore_checkpoint(source.save_checkpoint())
        for step in range(interrupt, steps):
            resumed.step(*_batch(step))
        assert _params_equal(resumed.params, uninterrupted.params)

    @given(
        replicas=st.sampled_from([1, 2, 3, 4, 6]),
        fused=st.booleans(),
        interrupt=st.integers(0, 3),
    )
    @settings(max_examples=10, deadline=None)
    def test_wus_any_replica_count(self, replicas, fused, interrupt):
        kind = "wus_fused" if fused else "wus_unfused"
        steps = 5
        uninterrupted = _trainer(kind, replicas)
        for step in range(steps):
            uninterrupted.step(*_batch(step))
        source = _trainer(kind, replicas)
        for step in range(interrupt):
            source.step(*_batch(step))
        resumed = _trainer(kind, replicas, seed=11)
        resumed.restore_checkpoint(source.save_checkpoint())
        for step in range(interrupt, steps):
            resumed.step(*_batch(step))
        assert _params_equal(resumed.params, uninterrupted.params)

    @given(
        n_from=st.sampled_from([2, 3, 4]),
        n_to=st.sampled_from([1, 2, 3, 4, 6]),
        fused=st.booleans(),
    )
    @settings(max_examples=10, deadline=None)
    def test_wus_reshards_across_replica_counts(self, n_from, n_to, fused):
        """A WUS snapshot restores onto any replica count.

        Exact bit-identity only holds within one collective layout, so the
        cross-shape check is semantic: the restored WUS trainer must match
        a DataParallelTrainer restored from the same snapshot to float
        tolerance (the repo-wide WUS == replicated-update equivalence).
        """
        def wus_trainer(n, seed=7):
            t = WeightUpdateShardedTrainer(
                MLP(LAYERS), Adam(learning_rate=0.01), num_replicas=n,
                fused=fused,
            )
            t.init(np.random.default_rng(seed))
            return t

        source = wus_trainer(n_from)
        for step in range(3):
            source.step(*_batch(step))
        ckpt = source.save_checkpoint()

        wus = wus_trainer(n_to, seed=23)
        wus.restore_checkpoint(ckpt)
        reference = DataParallelTrainer(
            MLP(LAYERS), Adam(learning_rate=0.01), dp_x=n_to,
            grad_dtype_policy="f64",
        )
        reference.init(np.random.default_rng(0))
        reference.restore_checkpoint(ckpt)
        for step in range(3, 6):
            wus.step(*_batch(step))
            reference.step(*_batch(step))
        for name in reference.params:
            np.testing.assert_allclose(
                wus.params[name], reference.params[name], rtol=1e-9, atol=1e-12
            )


class TestChaosHarness:
    def _factory(self, n):
        return _trainer("wus_fused", n)

    def test_device_loss_restores_bit_identical_to_clean_resume(self):
        """The acceptance scenario: mid-run chip death, elastic restore.

        The chaos run checkpoints every 4 steps and loses a chip at step 6;
        the reference interrupts nothing — it trains the original shape to
        the same step-4 checkpoint, restores it onto the survivors, and
        runs straight through.  Final params must match bit-for-bit.
        """
        plan = FaultPlan(chip_failures=(ChipFailure((1, 0), at_step=6),))
        config = ChaosConfig(
            mesh_shape=(4, 1), target_steps=10, checkpoint_interval=4
        )
        report = run_chaos(
            plan, config, trainer_factory=self._factory, batch_fn=_batch
        )
        assert report.device_failures == 1
        assert report.survivors == 3

        source = self._factory(4)
        for step in range(4):
            source.step(*_batch(step))
        ckpt = source.save_checkpoint()
        reference = self._factory(3)
        reference.restore_checkpoint(ckpt)
        for step in range(4, 10):
            reference.step(*_batch(step))
        assert _params_equal(report.final_params, reference.params)

    def test_goodput_accounting_pinned(self):
        plan = FaultPlan(
            chip_failures=(ChipFailure((1, 0), at_step=6),),
            stragglers=(StragglerFault((3, 0), 0, 2, 2.0),),
        )
        config = ChaosConfig(
            mesh_shape=(4, 1), target_steps=10, checkpoint_interval=4,
            base_step_seconds=1.0, detection_timeout_s=0.5,
            restore_bandwidth_bytes_per_s=1e9,
        )
        report = run_chaos(plan, config, state_bytes=int(1e9))
        # Steps 0 and 1 run at 2x (straggler); failure at step 6 wastes the
        # partial step plus steps 4-5 (last checkpoint at 4) and restarts.
        assert report.lost_steps == 3
        assert report.restarts == 1
        assert report.steps_executed == 12  # 10 useful + 2 redone
        assert report.restart_seconds == pytest.approx(0.5 + 1.0)
        assert report.mttr_seconds == pytest.approx(1.5)
        # Timeline: 2*2.0 (straggled) + 10*1.0 (clean incl. redone) + 1.0
        # wasted partial + 1.5 restart.
        assert report.total_seconds == pytest.approx(4.0 + 10.0 + 1.0 + 1.5)
        assert report.useful_seconds == pytest.approx(10.0)
        assert report.goodput == pytest.approx(10.0 / 16.5)

    def test_failure_counters_pinned(self):
        telemetry.enable()
        telemetry.reset()
        try:
            plan = FaultPlan(chip_failures=(ChipFailure((1, 0), at_step=6),))
            config = ChaosConfig(
                mesh_shape=(4, 1), target_steps=10, checkpoint_interval=4,
                detection_timeout_s=0.5, restore_bandwidth_bytes_per_s=1e9,
            )
            run_chaos(plan, config, state_bytes=int(1e9))
            m = telemetry.metrics
            assert m.value("resilience_device_failures") == 1
            assert m.value("resilience_lost_steps") == 3
            assert m.value("resilience_restarts") == 1
            assert m.value("resilience_restart_seconds") == pytest.approx(1.5)
            assert m.value("resilience_mttr_seconds") == pytest.approx(1.5)
        finally:
            telemetry.reset()

    def test_killing_every_chip_raises(self):
        plan = FaultPlan(
            chip_failures=(
                ChipFailure((0, 0), at_step=1),
                ChipFailure((1, 0), at_step=1),
            ),
        )
        config = ChaosConfig(mesh_shape=(2, 1), target_steps=5)
        with pytest.raises(DeviceLostError):
            run_chaos(plan, config, state_bytes=1)

    def test_multiple_failures_shrink_mesh_progressively(self):
        plan = FaultPlan(
            chip_failures=(
                ChipFailure((0, 0), at_step=2),
                ChipFailure((1, 0), at_step=5),
            ),
        )
        config = ChaosConfig(
            mesh_shape=(4, 1), target_steps=8, checkpoint_interval=2
        )
        report = run_chaos(
            plan, config, trainer_factory=self._factory, batch_fn=_batch
        )
        assert report.device_failures == 2
        assert report.restarts == 2
        assert report.survivors == 2
        assert report.final_params is not None

    def test_trainer_factory_requires_batch_fn(self):
        config = ChaosConfig(mesh_shape=(2, 1), target_steps=1)
        with pytest.raises(ValueError):
            run_chaos(FaultPlan(), config, trainer_factory=self._factory)


class TestReportIntegration:
    def test_failure_counters_appear_in_breakdown(self):
        from repro.telemetry.report import step_breakdown

        telemetry.enable()
        telemetry.reset()
        try:
            plan = FaultPlan(chip_failures=(ChipFailure((1, 0), at_step=2),))
            config = ChaosConfig(
                mesh_shape=(2, 1), target_steps=4, checkpoint_interval=2
            )
            run_chaos(plan, config, state_bytes=1000)
            report = step_breakdown()
            for counter in (
                "resilience_device_failures",
                "resilience_lost_steps",
                "resilience_restarts",
                "resilience_restart_seconds",
                "resilience_mttr_seconds",
            ):
                assert counter in report, counter
        finally:
            telemetry.reset()

"""Discrete-event engine tests."""

import pytest

from repro.sim.engine import Simulator, SimulationError


class TestClock:
    def test_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_run_empty(self):
        sim = Simulator()
        assert sim.run() == 0.0

    def test_run_until_advances_clock(self):
        sim = Simulator()
        sim.run(until=5.0)
        assert sim.now == 5.0


class TestTimeout:
    def test_fires_at_delay(self):
        sim = Simulator()
        seen = []

        def p(sim):
            yield sim.timeout(2.5)
            seen.append(sim.now)

        sim.process(p(sim))
        sim.run()
        assert seen == [2.5]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)

    def test_timeout_value_delivered(self):
        sim = Simulator()
        seen = []

        def p(sim):
            value = yield sim.timeout(1.0, value="hello")
            seen.append(value)

        sim.process(p(sim))
        sim.run()
        assert seen == ["hello"]

    def test_ordering_fifo_at_same_time(self):
        sim = Simulator()
        order = []

        def p(sim, name):
            yield sim.timeout(1.0)
            order.append(name)

        for name in "abc":
            sim.process(p(sim, name))
        sim.run()
        assert order == ["a", "b", "c"]


class TestProcess:
    def test_sequential_waits_accumulate(self):
        sim = Simulator()
        times = []

        def p(sim):
            yield sim.timeout(1.0)
            times.append(sim.now)
            yield sim.timeout(2.0)
            times.append(sim.now)

        sim.process(p(sim))
        sim.run()
        assert times == [1.0, 3.0]

    def test_process_is_waitable(self):
        sim = Simulator()
        log = []

        def child(sim):
            yield sim.timeout(3.0)
            return "done"

        def parent(sim):
            result = yield sim.process(child(sim))
            log.append((sim.now, result))

        sim.process(parent(sim))
        sim.run()
        assert log == [(3.0, "done")]

    def test_waiting_on_already_finished_process(self):
        sim = Simulator()
        log = []

        def child(sim):
            yield sim.timeout(1.0)
            return 42

        def parent(sim, child_proc):
            yield sim.timeout(5.0)
            value = yield child_proc
            log.append((sim.now, value))

        c = sim.process(child(sim))
        sim.process(parent(sim, c))
        sim.run()
        assert log == [(5.0, 42)]

    def test_yielding_non_event_raises(self):
        sim = Simulator()

        def bad(sim):
            yield 42

        sim.process(bad(sim))
        with pytest.raises(SimulationError, match="expected an Event"):
            sim.run()

    def test_exception_in_process_propagates(self):
        sim = Simulator()

        def bad(sim):
            yield sim.timeout(1.0)
            raise RuntimeError("boom")

        sim.process(bad(sim))
        with pytest.raises(RuntimeError, match="boom"):
            sim.run()


class TestEvents:
    def test_manual_trigger(self):
        sim = Simulator()
        ev = sim.event()
        log = []

        def waiter(sim):
            value = yield ev
            log.append((sim.now, value))

        def trigger(sim):
            yield sim.timeout(2.0)
            ev.succeed("go")

        sim.process(waiter(sim))
        sim.process(trigger(sim))
        sim.run()
        assert log == [(2.0, "go")]

    def test_double_trigger_rejected(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_delivers_exception(self):
        sim = Simulator()
        ev = sim.event()
        caught = []

        def waiter(sim):
            try:
                yield ev
            except ValueError as exc:
                caught.append(str(exc))

        def trigger(sim):
            yield sim.timeout(1.0)
            ev.fail(ValueError("nope"))

        sim.process(waiter(sim))
        sim.process(trigger(sim))
        sim.run()
        assert caught == ["nope"]

    def test_value_before_trigger_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            _ = sim.event().value


class TestCombinators:
    def test_all_of_waits_for_slowest(self):
        sim = Simulator()
        log = []

        def p(sim):
            values = yield sim.all_of([sim.timeout(1.0, "a"), sim.timeout(3.0, "b")])
            log.append((sim.now, values))

        sim.process(p(sim))
        sim.run()
        assert log == [(3.0, ["a", "b"])]

    def test_all_of_empty(self):
        sim = Simulator()
        log = []

        def p(sim):
            yield sim.all_of([])
            log.append(sim.now)

        sim.process(p(sim))
        sim.run()
        assert log == [0.0]

    def test_any_of_fires_on_first(self):
        sim = Simulator()
        log = []

        def p(sim):
            value = yield sim.any_of([sim.timeout(5.0, "slow"), sim.timeout(1.0, "fast")])
            log.append((sim.now, value))

        sim.process(p(sim))
        sim.run()
        assert log == [(1.0, "fast")]

    def test_any_of_empty_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.any_of([])


class TestUnhandledFailures:
    """Unhandled process crashes must surface from run(), naming the culprit."""

    def test_crash_note_names_process_and_time(self):
        sim = Simulator()

        def bad(sim):
            yield sim.timeout(2.0)
            raise RuntimeError("boom")

        sim.process(bad(sim), name="collector")
        with pytest.raises(RuntimeError, match="boom") as err:
            sim.run()
        notes = getattr(err.value, "__notes__", [])
        assert any(
            "unhandled failure in process 'collector' at t=2" in n for n in notes
        )

    def test_joined_failure_is_handled_not_reraised(self):
        sim = Simulator()
        caught = []

        def bad(sim):
            yield sim.timeout(1.0)
            raise RuntimeError("boom")

        def watcher(sim, child):
            try:
                yield child
            except RuntimeError as exc:
                caught.append(str(exc))

        child = sim.process(bad(sim))
        sim.process(watcher(sim, child))
        sim.run()  # must not raise: the watcher consumed the failure
        assert caught == ["boom"]

    def test_any_of_race_loser_failure_still_surfaces(self):
        # A process that loses an any_of race and *then* crashes has no
        # joiner left; its failure must not be silently dropped.
        sim = Simulator()

        def loser(sim):
            yield sim.timeout(2.0)
            raise ValueError("late crash")

        def racer(sim, loser_proc):
            yield sim.any_of([sim.timeout(1.0), loser_proc])

        proc = sim.process(loser(sim), name="loser")
        sim.process(racer(sim, proc))
        with pytest.raises(ValueError, match="late crash"):
            sim.run()

    def test_all_of_child_failure_delivered_to_waiter(self):
        sim = Simulator()
        caught = []

        def bad(sim):
            yield sim.timeout(1.0)
            raise RuntimeError("child died")

        def waiter(sim, children):
            try:
                yield sim.all_of(children)
            except RuntimeError as exc:
                caught.append(str(exc))

        children = [sim.process(bad(sim)), sim.timeout(5.0)]
        sim.process(waiter(sim, children))
        sim.run()
        assert caught == ["child died"]

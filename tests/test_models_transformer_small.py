"""Tiny-Transformer classifier tests: gradients, training, head sharding."""

import numpy as np
import pytest

from repro.models.transformer_small import (
    TinyTransformerClassifier,
    synthetic_sequences,
)


@pytest.fixture
def model():
    return TinyTransformerClassifier(features=6, hidden=8, num_heads=2, classes=3)


class TestForward:
    def test_logit_shape(self, model, rng):
        params = model.init_params(rng)
        x = rng.standard_normal((5, 4, 6))
        assert model.forward(params, x).shape == (5, 3)

    def test_bad_input(self, model, rng):
        params = model.init_params(rng)
        with pytest.raises(ValueError):
            model.forward(params, rng.standard_normal((5, 6)))

    def test_heads_must_divide(self):
        with pytest.raises(ValueError):
            TinyTransformerClassifier(6, 10, 4, 3)


class TestGradients:
    def test_match_numerical(self, rng):
        model = TinyTransformerClassifier(features=4, hidden=4, num_heads=2, classes=2)
        params = model.init_params(rng)
        x = rng.standard_normal((3, 3, 4))
        labels = np.array([0, 1, 0])
        _, grads = model.loss_and_grad(params, x, labels)
        eps = 1e-6

        def loss():
            return model.loss_and_grad(params, x, labels)[0]

        # Dense params.
        for name in ("w_in", "w_out", "b_out"):
            w = params[name]
            g = grads[name]
            flat = w.reshape(-1)
            for idx in range(0, flat.size, max(1, flat.size // 5)):
                old = flat[idx]
                flat[idx] = old + eps
                hi = loss()
                flat[idx] = old - eps
                lo = loss()
                flat[idx] = old
                assert np.asarray(g).reshape(-1)[idx] == pytest.approx(
                    (hi - lo) / (2 * eps), abs=1e-5
                ), name
        # Attention params (sampled entries).
        for name in ("wq", "wk", "wv", "wo"):
            w = getattr(params["attn"], name)
            g = getattr(grads["attn"], name)
            flat = w.reshape(-1)
            for idx in range(0, flat.size, max(1, flat.size // 4)):
                old = flat[idx]
                flat[idx] = old + eps
                hi = loss()
                flat[idx] = old - eps
                lo = loss()
                flat[idx] = old
                assert g.reshape(-1)[idx] == pytest.approx(
                    (hi - lo) / (2 * eps), abs=1e-5
                ), name


class TestTraining:
    def test_learns_to_find_the_prototype(self, rng):
        """The task requires attention: the signal sits at a random seq
        position, so mean-pooling noise alone cannot solve it well."""
        model = TinyTransformerClassifier(features=8, hidden=16, num_heads=4,
                                          classes=3)
        x, y = synthetic_sequences(rng, 96, seq=6, features=8, classes=3,
                                   noise=0.05)
        params = model.init_params(np.random.default_rng(0))
        first_loss, _ = model.loss_and_grad(params, x, y)
        for _ in range(60):
            _, grads = model.loss_and_grad(params, x, y)
            params = model.sgd_step(params, grads, lr=0.3)
        last_loss, _ = model.loss_and_grad(params, x, y)
        assert last_loss < first_loss * 0.5
        assert model.accuracy(params, x, y) > 0.8


class TestHeadSharding:
    @pytest.mark.parametrize("mp", [1, 2])
    def test_sharded_forward_matches(self, model, rng, mp):
        params = model.init_params(rng)
        x = rng.standard_normal((4, 5, 6))
        full = model.forward(params, x)
        sharded = model.forward_sharded(params, x, mp)
        assert np.allclose(sharded, full, rtol=1e-12)

    def test_sharded_accuracy_identical(self, rng):
        model = TinyTransformerClassifier(features=8, hidden=16, num_heads=4,
                                          classes=3)
        params = model.init_params(rng)
        x, y = synthetic_sequences(rng, 32, 5, 8, 3)
        full_pred = np.argmax(model.forward(params, x), axis=-1)
        shard_pred = np.argmax(model.forward_sharded(params, x, 4), axis=-1)
        assert np.array_equal(full_pred, shard_pred)

"""Model-parallel (feature-sharded) training equivalence tests (§3.1)."""

import numpy as np
import pytest

from repro.core.data_parallel import SingleDeviceTrainer
from repro.core.model_parallel import FeatureShardedMLP, HybridParallelTrainer
from repro.models.mlp import MLP, synthetic_classification
from repro.optim import Adam, LAMB, LARS, SGDMomentum

OPTIMIZERS = [
    ("sgd", lambda: SGDMomentum(0.05)),
    ("lars", lambda: LARS(0.5)),
    ("lamb", lambda: LAMB(0.01)),
    ("adam", lambda: Adam(0.01)),
]


def _data(seed=0, n=48):
    rng = np.random.default_rng(seed)
    return synthetic_classification(rng, n, 12, 4)


def _max_param_diff(p1, p2):
    return max(
        float(np.max(np.abs(np.asarray(p1[k]) - np.asarray(p2[k])))) for k in p1
    )


class TestShardingRoundtrip:
    def test_shard_gather_identity(self, rng):
        model = MLP([12, 16, 8, 4])
        mp = FeatureShardedMLP(model, 4)
        params = model.init_params(rng)
        shards = mp.shard_params(params)
        rebuilt = mp.gather_params(shards)
        assert _max_param_diff(params, rebuilt) == 0.0

    def test_shard_shapes(self, rng):
        model = MLP([12, 16, 8, 4])
        mp = FeatureShardedMLP(model, 4)
        shards = mp.shard_params(model.init_params(rng))
        assert shards[0]["w0"].shape == (12, 4)   # column shard
        assert shards[0]["w1"].shape == (4, 8)    # row shard
        assert shards[0]["b0"].shape == (4,)      # sharded bias
        assert shards[0]["b1"].shape == (8,)      # replicated bias

    def test_trailing_layer_replicated(self, rng):
        model = MLP([12, 16, 8, 4])  # 3 layers: pair + trailing
        mp = FeatureShardedMLP(model, 2)
        shards = mp.shard_params(model.init_params(rng))
        assert shards[0]["w2"].shape == (8, 4)
        assert np.array_equal(shards[0]["w2"], shards[1]["w2"])

    def test_indivisible_hidden(self):
        with pytest.raises(ValueError, match="not divisible"):
            FeatureShardedMLP(MLP([12, 10, 4]), 4)

    def test_wrong_shard_count(self, rng):
        model = MLP([12, 16, 4])
        mp = FeatureShardedMLP(model, 2)
        with pytest.raises(ValueError):
            mp.gather_params([model.init_params(rng)])


class TestShardedForwardBackward:
    @pytest.mark.parametrize("mp_size", [1, 2, 4])
    def test_forward_matches_unsharded(self, mp_size, rng):
        model = MLP([12, 16, 4])
        mp = FeatureShardedMLP(model, mp_size)
        params = model.init_params(rng)
        x = rng.standard_normal((6, 12))
        expected = model.forward(params, x)
        got = mp.forward(mp.shard_params(params), x)
        assert np.allclose(got, expected, rtol=1e-12)

    @pytest.mark.parametrize("layers", [[12, 16, 4], [12, 16, 8, 4], [12, 8, 8, 8, 4]])
    def test_gradients_match_unsharded(self, layers, rng):
        model = MLP(layers)
        mp = FeatureShardedMLP(model, 4)
        params = model.init_params(rng)
        x, y = _data(n=16)
        ref_loss, ref_grads = model.loss_and_grad(params, x, y)
        loss, shard_grads = mp.loss_and_grad(mp.shard_params(params), x, y)
        assert loss == pytest.approx(ref_loss, rel=1e-12)
        rebuilt = mp.gather_params(shard_grads)
        for k in ref_grads:
            assert np.allclose(rebuilt[k], ref_grads[k], rtol=1e-10, atol=1e-12)


class TestHybridTrainer:
    @pytest.mark.parametrize("name,make_opt", OPTIMIZERS)
    @pytest.mark.parametrize("dp,mp", [(1, 2), (2, 2), (4, 1), (2, 4)])
    def test_equivalence_with_single_device(self, name, make_opt, dp, mp):
        model = MLP([12, 16, 8, 4])
        x, y = _data()
        ref = SingleDeviceTrainer(model, make_opt())
        ref.init(np.random.default_rng(7))
        hy = HybridParallelTrainer(model, make_opt(), dp_size=dp, mp_size=mp)
        hy.init(np.random.default_rng(7))
        for _ in range(3):
            ref_loss = ref.step(x, y)
            hy_loss = hy.step(x, y)
            assert hy_loss == pytest.approx(ref_loss, rel=1e-10)
        assert _max_param_diff(ref.params, hy.full_params()) < 1e-10

    def test_peer_reduction_runs_per_shard(self):
        """Gradients of each weight shard are summed across replicas only
        (the Figure 4 peer rings) — verified by equivalence at dp=3."""
        model = MLP([12, 16, 4])
        x, y = _data(n=48)
        ref = SingleDeviceTrainer(model, SGDMomentum(0.1))
        ref.init(np.random.default_rng(1))
        hy = HybridParallelTrainer(model, SGDMomentum(0.1), dp_size=3, mp_size=2)
        hy.init(np.random.default_rng(1))
        for _ in range(2):
            ref.step(x, y)
            hy.step(x, y)
        assert _max_param_diff(ref.params, hy.full_params()) < 1e-12

    def test_batch_divisibility(self):
        hy = HybridParallelTrainer(MLP([4, 4, 2]), SGDMomentum(0.1), 4, 2)
        hy.init(np.random.default_rng(0))
        with pytest.raises(ValueError):
            hy.step(np.zeros((6, 4)), np.zeros(6, int))

    def test_step_before_init(self):
        hy = HybridParallelTrainer(MLP([4, 4, 2]), SGDMomentum(0.1), 2, 2)
        with pytest.raises(RuntimeError):
            hy.step(np.zeros((4, 4)), np.zeros(4, int))

    def test_train_loop_learns(self):
        rng = np.random.default_rng(5)
        x, y = synthetic_classification(rng, 120, 12, 4, noise=0.05)
        model = MLP([12, 16, 4])
        hy = HybridParallelTrainer(model, SGDMomentum(0.2), dp_size=2, mp_size=2)
        hy.init(np.random.default_rng(0))

        def batches():
            while True:
                yield x, y

        hy.train(batches(), steps=40)
        assert model.accuracy(hy.full_params(), x, y) > 0.9

"""Convergence-model tests."""

import pytest

from repro.core.convergence import BERT_SAMPLES_TABLE, ConvergenceModel, _log_interpolate
from repro.models import (
    bert_large_spec,
    dlrm_spec,
    maskrcnn_spec,
    resnet50_spec,
    ssd_spec,
    transformer_big_spec,
)


class TestInterpolation:
    def test_exact_points(self):
        table = {100: 1.0, 1000: 2.0}
        assert _log_interpolate(table, 100) == 1.0
        assert _log_interpolate(table, 1000) == 2.0

    def test_clamping(self):
        table = {100: 1.0, 1000: 2.0}
        assert _log_interpolate(table, 10) == 1.0
        assert _log_interpolate(table, 10000) == 2.0

    def test_log_midpoint(self):
        table = {100: 1.0, 10000: 3.0}
        assert _log_interpolate(table, 1000) == pytest.approx(2.0)

    def test_empty_table(self):
        with pytest.raises(ValueError):
            _log_interpolate({}, 100)


class TestResNet:
    def test_paper_anchor_points(self):
        """Section 5: 44 epochs at batch 4K, 88 at 64K."""
        m = ConvergenceModel(resnet50_spec())
        assert m.epochs_to_converge(4096) == pytest.approx(44.0)
        assert m.epochs_to_converge(65536) == pytest.approx(88.0)

    def test_monotone_in_batch(self):
        m = ConvergenceModel(resnet50_spec())
        epochs = [m.epochs_to_converge(b) for b in (4096, 16384, 65536)]
        assert epochs == sorted(epochs)

    def test_steps_count(self):
        m = ConvergenceModel(resnet50_spec())
        steps = m.steps_to_converge(65536)
        assert steps == -(-int(88 * 1_281_167) // 65536)


class TestBert:
    def test_sample_based(self):
        m = ConvergenceModel(bert_large_spec())
        assert m.samples_to_converge(8192) == pytest.approx(
            BERT_SAMPLES_TABLE[8192]
        )

    def test_large_batch_needs_more_samples(self):
        m = ConvergenceModel(bert_large_spec())
        assert m.samples_to_converge(32768) > m.samples_to_converge(1024)

    def test_steps_decrease_with_batch(self):
        m = ConvergenceModel(bert_large_spec())
        assert m.steps_to_converge(8192) < m.steps_to_converge(1024)


class TestOthers:
    def test_transformer_fixed_budget(self):
        m = ConvergenceModel(transformer_big_spec())
        assert m.epochs_to_converge(2048) == pytest.approx(3.0)

    def test_dlrm_less_than_one_epoch(self):
        m = ConvergenceModel(dlrm_spec())
        assert m.epochs_to_converge(65536) < 1.0

    def test_ssd_and_maskrcnn_tables(self):
        assert ConvergenceModel(ssd_spec()).epochs_to_converge(4096) == 64.0
        assert ConvergenceModel(maskrcnn_spec()).epochs_to_converge(256) == 26.0

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            ConvergenceModel(resnet50_spec()).epochs_to_converge(0)

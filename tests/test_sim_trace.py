"""Trace collection tests."""

import pytest

from repro.sim.trace import Trace, TraceEvent


class TestTrace:
    def test_record_and_busy_time(self):
        t = Trace()
        t.record("chip0", "compute", 0.0, 2.0, "compute")
        t.record("chip0", "allreduce", 2.0, 1.0, "comm")
        t.record("chip1", "compute", 0.0, 3.0, "compute")
        assert t.busy_time("chip0") == pytest.approx(3.0)
        assert t.busy_time("chip1") == pytest.approx(3.0)

    def test_busy_time_overlapping_spans_counted_once(self):
        t = Trace()
        t.record("chip0", "outer", 0.0, 4.0)
        t.record("chip0", "inner", 1.0, 2.0)
        t.record("chip0", "straddle", 3.5, 2.0)
        assert t.busy_time("chip0") == pytest.approx(5.5)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Trace().record("a", "x", 0.0, -1.0)

    def test_span(self):
        t = Trace()
        t.record("a", "x", 1.0, 2.0)
        t.record("b", "y", 0.5, 1.0)
        assert t.span() == (0.5, 3.0)

    def test_empty_span(self):
        assert Trace().span() == (0.0, 0.0)

    def test_utilization(self):
        t = Trace()
        t.record("a", "x", 0.0, 1.0)
        t.record("b", "y", 0.0, 4.0)
        assert t.utilization("a") == pytest.approx(0.25)
        assert t.utilization("b") == pytest.approx(1.0)

    def test_by_category(self):
        t = Trace()
        t.record("a", "x", 0.0, 1.0, "compute")
        t.record("b", "y", 0.0, 2.0, "compute")
        t.record("a", "z", 1.0, 0.5, "comm")
        assert t.by_category() == {"compute": 3.0, "comm": 0.5}

    def test_actors_sorted(self):
        t = Trace()
        t.record("b", "x", 0, 1)
        t.record("a", "x", 0, 1)
        assert t.actors() == ["a", "b"]

    def test_chrome_trace_format(self):
        t = Trace()
        t.record("chip0", "step", 0.001, 0.002, "compute")
        meta, event = t.to_chrome_trace()
        assert meta["ph"] == "M"
        assert event["ph"] == "X"
        assert event["ts"] == pytest.approx(1000.0)
        assert event["dur"] == pytest.approx(2000.0)
        assert event["tid"] == "chip0"
        assert event["args"] == {"actor": "chip0", "category": "compute"}

    def test_merge_and_source_pids(self):
        sim = Trace()
        sim.record("torus", "rs", 0.0, 1.0, "comm")
        measured = Trace()
        measured.record("trainer", "rs", 0.0, 1.5, "comm", source="measured")
        merged = Trace().merge(sim, source="sim").merge(measured)
        assert merged.sources() == ["measured", "sim"]
        spans = [e for e in merged.to_chrome_trace() if e["ph"] == "X"]
        assert len({e["pid"] for e in spans}) == 2

    def test_event_end(self):
        e = TraceEvent("a", "x", 1.0, 2.0)
        assert e.end == pytest.approx(3.0)

"""Tests for the repro.spmd facade (plan.py) and the graph executor."""

import functools

import numpy as np
import pytest

from repro.hardware.topology import TorusMesh
from repro.spmd import (
    ExecutionUnsupported,
    PartitionPlan,
    Sharding,
    ShardingSpec,
    ValidationResult,
    execute_plan,
    execute_reference,
    make_inputs,
    make_partitioner,
    validate_plan,
)
from repro.spmd.ir import Graph
from repro.spmd.modelgraphs import (
    resnet_block_graph,
    spatial_seeds,
    transformer_block_graph,
    transformer_seeds,
)

#: shapes small enough that all sums stay integer-exact in float64.
small_transformer = functools.partial(
    transformer_block_graph, seq=16, hidden=32, ffn=64, vocab=128
)


class TestPartitionPlan:
    def _plan(self, k=4):
        g = transformer_block_graph()
        return make_partitioner("v07").partition(
            g, ShardingSpec.from_seeds(k, dict(transformer_seeds(g, k)))
        )

    def test_properties_mirror_partitioned_graph(self):
        plan = self._plan()
        assert plan.num_shards == 4
        assert plan.shardings == plan.partitioned.shardings
        assert plan.compute_shardings == plan.partitioned.compute_shardings
        assert plan.comm_ops == plan.partitioned.comm_ops
        assert plan.serial_nodes == plan.partitioned.serial_nodes
        assert plan.total_seconds == plan.cost.total_seconds

    def test_plan_is_frozen(self):
        plan = self._plan()
        with pytest.raises(AttributeError):
            plan.cost = None

    def test_describe(self):
        text = self._plan().describe()
        assert "k=4" in text
        assert "comm_ops=" in text

    def test_spec_describe(self):
        spec = ShardingSpec.from_seeds(2, {"w": Sharding.split(2, 0)})
        assert "w=split" in spec.describe()
        assert "replicated" in ShardingSpec.replicated(2).describe()

    def test_mesh_is_bound_into_cost(self):
        g1, g2 = transformer_block_graph(), transformer_block_graph()
        spec = ShardingSpec.from_seeds(4, dict(transformer_seeds(g1, 4)))
        default = make_partitioner("v07").partition(g1, spec)
        slow = make_partitioner(
            "v07", mesh=TorusMesh(2, 2), mxu_efficiency=0.1
        ).partition(g2, spec)
        assert slow.cost.compute_seconds > default.cost.compute_seconds


class TestMakeInputs:
    def test_deterministic_and_integer_valued(self):
        g = resnet_block_graph()
        a = make_inputs(g, seed=7)
        b = make_inputs(g, seed=7)
        c = make_inputs(g, seed=8)
        assert set(a) == {
            n.id for n in g.nodes if n.op in ("input", "parameter")
        }
        for nid in a:
            assert a[nid].dtype == np.float64
            assert np.array_equal(a[nid], np.round(a[nid]))
            assert np.array_equal(a[nid], b[nid])
        assert any(not np.array_equal(a[nid], c[nid]) for nid in a)

    def test_shapes_match_graph(self):
        g = small_transformer()
        for nid, arr in make_inputs(g).items():
            assert arr.shape == g.node(nid).shape


class TestExecuteReference:
    def test_matches_hand_computation(self):
        g = Graph()
        a = g.input((2, 3))
        b = g.parameter((3, 2))
        y = g.matmul(a, b)
        r = g.elementwise(y, "relu")
        loss = g.reduce(r)
        inputs = make_inputs(g, seed=0)
        vals = execute_reference(g, inputs)
        want = np.maximum(inputs[a] @ inputs[b], 0.0)
        assert np.array_equal(vals[r], want)
        assert vals[loss] == np.sum(want)

    def test_stride2_conv_unsupported(self):
        g = Graph()
        x = g.input((1, 8, 8, 2))
        w = g.parameter((3, 3, 2, 2))
        g.conv2d(x, w, stride=2)
        with pytest.raises(ExecutionUnsupported):
            execute_reference(g, make_inputs(g))


class TestExecutePlan:
    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_resnet_block_bit_exact(self, k):
        g = resnet_block_graph()
        plan = make_partitioner("v07").partition(
            g, ShardingSpec.from_seeds(k, dict(spatial_seeds(g, k)))
        )
        result = validate_plan(plan, seed=3)
        assert result.ok, result.describe()
        assert result.num_nodes == len(g.nodes)

    @pytest.mark.parametrize("features", ["v06", "v07"])
    @pytest.mark.parametrize("k", [2, 4])
    def test_small_transformer_bit_exact(self, features, k):
        g = small_transformer()
        plan = make_partitioner(features).partition(
            g, ShardingSpec.from_seeds(k, dict(transformer_seeds(g, k)))
        )
        result = validate_plan(plan, seed=1)
        assert result.ok, result.describe()

    def test_executed_values_match_reference_exactly(self):
        g = small_transformer()
        plan = make_partitioner("v07").partition(
            g, ShardingSpec.from_seeds(2, dict(transformer_seeds(g, 2)))
        )
        inputs = make_inputs(g, seed=0)
        ref = execute_reference(g, inputs)
        got = execute_plan(plan, inputs)
        assert set(ref) == set(got)
        for nid in ref:
            assert np.array_equal(ref[nid], got[nid]), g.node(nid).name

    def test_contracting_matmul_partial_sums_exact(self):
        g = Graph()
        a = g.input((8, 16))
        b = g.parameter((16, 4))
        y = g.matmul(a, b)
        g.elementwise(y, "relu")
        plan = make_partitioner("v07").partition(
            g, ShardingSpec(num_shards=4, assignments=((b, Sharding.split(4, 0)),))
        )
        assert plan.compute_shardings[y].partial
        assert validate_plan(plan).ok

    def test_validation_result_describe(self):
        good = ValidationResult(ok=True, num_nodes=5)
        bad = ValidationResult(ok=False, num_nodes=5, mismatched_nodes=("x",))
        assert "bit-exact" in good.describe()
        assert "MISMATCH" in bad.describe()

"""Resource, Store, and Channel tests."""

import pytest

from repro.sim.engine import Simulator, SimulationError
from repro.sim.resources import Channel, Resource, Store


class TestResource:
    def test_serializes_beyond_capacity(self):
        sim = Simulator()
        r = Resource(sim, capacity=1)
        done = []

        def user(sim, name):
            yield from r.use(2.0)
            done.append((sim.now, name))

        sim.process(user(sim, "a"))
        sim.process(user(sim, "b"))
        sim.run()
        assert done == [(2.0, "a"), (4.0, "b")]

    def test_parallel_within_capacity(self):
        sim = Simulator()
        r = Resource(sim, capacity=2)
        done = []

        def user(sim, name):
            yield from r.use(2.0)
            done.append((sim.now, name))

        for n in "ab":
            sim.process(user(sim, n))
        sim.run()
        assert done == [(2.0, "a"), (2.0, "b")]

    def test_fifo_queue_order(self):
        sim = Simulator()
        r = Resource(sim, capacity=1)
        order = []

        def user(sim, name):
            yield from r.use(1.0)
            order.append(name)

        for n in "abcd":
            sim.process(user(sim, n))
        sim.run()
        assert order == ["a", "b", "c", "d"]

    def test_release_without_acquire(self):
        sim = Simulator()
        r = Resource(sim, capacity=1)
        with pytest.raises(SimulationError):
            r.release()

    def test_invalid_capacity(self):
        with pytest.raises(SimulationError):
            Resource(Simulator(), capacity=0)

    def test_queue_length_tracking(self):
        sim = Simulator()
        r = Resource(sim, capacity=1)
        r.acquire()
        r.acquire()
        assert r.in_use == 1
        assert r.queue_length == 1


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        s = Store(sim)
        got = []

        def consumer(sim):
            item = yield s.get()
            got.append((sim.now, item))

        def producer(sim):
            yield sim.timeout(1.0)
            yield s.put("x")

        sim.process(consumer(sim))
        sim.process(producer(sim))
        sim.run()
        assert got == [(1.0, "x")]

    def test_get_blocks_until_item(self):
        sim = Simulator()
        s = Store(sim)
        log = []

        def consumer(sim):
            item = yield s.get()
            log.append(sim.now)

        sim.process(consumer(sim))
        sim.run()
        assert log == []  # never unblocked

    def test_capacity_blocks_producer(self):
        sim = Simulator()
        s = Store(sim, capacity=1)
        times = []

        def producer(sim):
            for i in range(3):
                yield s.put(i)
                times.append(sim.now)

        def consumer(sim):
            for _ in range(3):
                yield sim.timeout(2.0)
                yield s.get()

        sim.process(producer(sim))
        sim.process(consumer(sim))
        sim.run()
        # First put immediate; later puts wait for space.
        assert times[0] == 0.0
        assert times[1] >= 2.0

    def test_fifo_item_order(self):
        sim = Simulator()
        s = Store(sim)
        got = []

        def producer(sim):
            for i in range(3):
                yield s.put(i)

        def consumer(sim):
            for _ in range(3):
                item = yield s.get()
                got.append(item)

        sim.process(producer(sim))
        sim.process(consumer(sim))
        sim.run()
        assert got == [0, 1, 2]

    def test_level(self):
        sim = Simulator()
        s = Store(sim)
        s.put(1)
        s.put(2)
        sim.run()
        assert s.level == 2


class TestChannel:
    def test_transfer_time(self):
        sim = Simulator()
        ch = Channel(sim, bandwidth=100.0, latency=0.5)
        assert ch.transfer_time(50.0) == pytest.approx(1.0)

    def test_transfers_serialize(self):
        sim = Simulator()
        ch = Channel(sim, bandwidth=100.0)
        done = []

        def sender(sim, name):
            yield from ch.transfer(100.0)
            done.append((sim.now, name))

        sim.process(sender(sim, "a"))
        sim.process(sender(sim, "b"))
        sim.run()
        assert done == [(1.0, "a"), (2.0, "b")]

    def test_stats_accumulate(self):
        sim = Simulator()
        ch = Channel(sim, bandwidth=100.0)

        def sender(sim):
            yield from ch.transfer(100.0)
            yield from ch.transfer(50.0)

        sim.process(sender(sim))
        sim.run()
        assert ch.bytes_moved == pytest.approx(150.0)
        assert ch.busy_time == pytest.approx(1.5)

    def test_invalid_params(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Channel(sim, bandwidth=0)
        with pytest.raises(SimulationError):
            Channel(sim, bandwidth=1, latency=-1)

    def test_negative_transfer_rejected(self):
        sim = Simulator()
        ch = Channel(sim, bandwidth=100.0)

        def sender(sim):
            yield from ch.transfer(-5)

        sim.process(sender(sim))
        with pytest.raises(SimulationError):
            sim.run()

"""AUC implementation tests, including hypothesis cross-checks (§4.6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.auc import auc_binned, auc_naive, auc_sorted, synthetic_pctr


class TestKnownValues:
    def test_perfect_separation(self):
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        labels = np.array([0, 0, 1, 1])
        assert auc_sorted(scores, labels) == 1.0
        assert auc_naive(scores, labels) == 1.0

    def test_perfectly_wrong(self):
        scores = np.array([0.9, 0.8, 0.1, 0.2])
        labels = np.array([0, 0, 1, 1])
        assert auc_sorted(scores, labels) == 0.0

    def test_random_is_half(self):
        rng = np.random.default_rng(0)
        scores = rng.random(20_000)
        labels = rng.integers(0, 2, 20_000)
        assert auc_sorted(scores, labels) == pytest.approx(0.5, abs=0.02)

    def test_all_ties_is_half(self):
        scores = np.ones(10)
        labels = np.array([0, 1] * 5)
        assert auc_sorted(scores, labels) == pytest.approx(0.5)
        assert auc_naive(scores, labels) == pytest.approx(0.5)


class TestAgreement:
    def test_sorted_matches_naive_with_ties(self, rng):
        scores = rng.integers(0, 20, 500).astype(float)  # many ties
        labels = rng.integers(0, 2, 500)
        labels[0], labels[1] = 0, 1
        assert auc_sorted(scores, labels) == pytest.approx(
            auc_naive(scores, labels), rel=1e-12
        )

    @given(
        n=st.integers(min_value=4, max_value=200),
        levels=st.integers(min_value=2, max_value=30),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_sorted_equals_naive(self, n, levels, seed):
        rng = np.random.default_rng(seed)
        scores = rng.integers(0, levels, n).astype(float)
        labels = rng.integers(0, 2, n)
        labels[0], labels[1] = 0, 1
        assert auc_sorted(scores, labels) == pytest.approx(
            auc_naive(scores, labels), rel=1e-10
        )

    def test_binned_close_to_exact(self, rng):
        scores, labels = synthetic_pctr(rng, 50_000)
        exact = auc_sorted(scores, labels)
        approx = auc_binned(scores, labels, num_bins=5_000)
        assert approx == pytest.approx(exact, abs=0.005)


class TestValidation:
    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            auc_sorted(np.array([0.1, 0.2]), np.array([1, 1]))

    def test_non_binary_labels(self):
        with pytest.raises(ValueError):
            auc_sorted(np.array([0.1, 0.2]), np.array([0, 2]))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            auc_sorted(np.zeros(3), np.zeros(4))

    def test_binned_bins_validation(self, rng):
        scores, labels = synthetic_pctr(rng, 100)
        with pytest.raises(ValueError):
            auc_binned(scores, labels, num_bins=1)

    def test_binned_constant_scores(self):
        assert auc_binned(np.ones(10), np.array([0, 1] * 5)) == 0.5


class TestSyntheticPctr:
    def test_target_auc_reached(self, rng):
        scores, labels = synthetic_pctr(rng, 100_000, auc_target=0.80)
        assert auc_sorted(scores, labels) == pytest.approx(0.80, abs=0.01)

    def test_both_classes_present(self, rng):
        _, labels = synthetic_pctr(rng, 10)
        assert 0 < labels.sum() < len(labels)

    def test_invalid_target(self, rng):
        with pytest.raises(ValueError):
            synthetic_pctr(rng, 100, auc_target=0.4)

    def test_scaling_behavior(self, rng):
        """Sorted AUC is near-linearithmic: 4x data < 8x time (smoke)."""
        import time

        s1, l1 = synthetic_pctr(rng, 100_000)
        s2, l2 = synthetic_pctr(rng, 400_000)
        t0 = time.perf_counter(); auc_sorted(s1, l1); t1 = time.perf_counter() - t0
        t0 = time.perf_counter(); auc_sorted(s2, l2); t2 = time.perf_counter() - t0
        assert t2 < 10 * max(t1, 1e-4)

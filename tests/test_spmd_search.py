"""Tests for the automatic partitioner search (repro.spmd.search)."""

import functools

import math
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.spmd import (
    SearchConfig,
    ShardingSpec,
    make_partitioner,
    search_partitioning,
)
from repro.spmd.ir import Graph
from repro.spmd.modelgraphs import (
    resnet_block_graph,
    spatial_seeds,
    ssd_graph,
    transformer_block_graph,
    transformer_seeds,
)
from repro.spmd.search import candidate_shardings, seedable_nodes

small_transformer = functools.partial(
    transformer_block_graph, seq=16, hidden=32, ffn=64, vocab=128
)

#: graphs small enough for property tests to search quickly.
GRAPHS = {
    "resnet_block": resnet_block_graph,
    "small_transformer": small_transformer,
}


def _plan_key(plan):
    """Everything that identifies a ranked plan, for determinism checks."""
    return (plan.spec.assignments, plan.total_seconds)


class TestSearchConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SearchConfig(num_shards=0)
        with pytest.raises(ValueError):
            SearchConfig(num_shards=2, beam_width=0)
        with pytest.raises(ValueError):
            SearchConfig(num_shards=2, top_k=0)
        with pytest.raises(ValueError):
            SearchConfig(num_shards=2, seed_nodes="some")
        with pytest.raises(ValueError):
            SearchConfig(num_shards=2, validate_top=0)


class TestCandidateEnumeration:
    def test_only_tileable_dims(self):
        g = Graph()
        x = g.input((8, 2))
        options = candidate_shardings(g.node(x), 4)
        assert options[0].replicated
        assert [s.dim for s in options[1:]] == [0]  # dim 1 has size 2 < 4

    def test_seedable_modes(self):
        g = small_transformer()
        handles = seedable_nodes(g, "handles")
        everything = seedable_nodes(g, "all")
        assert {n.id for n in handles} == set(g.handles.values())
        assert {n.op for n in everything} <= {"input", "parameter"}
        assert len(everything) >= len(handles)


class TestSearchProperties:
    """The ISSUE's three properties, driven by hypothesis."""

    @settings(max_examples=8, deadline=None)
    @given(
        name=st.sampled_from(sorted(GRAPHS)),
        k=st.sampled_from([2, 4]),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_plans_feasible_and_ranked(self, name, k, seed):
        result = search_partitioning(
            GRAPHS[name](), SearchConfig(num_shards=k, seed=seed)
        )
        costs = [p.total_seconds for p in result.plans]
        assert costs == sorted(costs)
        for plan in result.plans:
            assert plan.num_shards == k
            assert math.isfinite(plan.total_seconds)
            assert plan.total_seconds > 0
            # Feasible: the spec re-partitions without raising.
            replay = make_partitioner("v07").partition(plan.graph, plan.spec)
            assert replay.total_seconds == plan.total_seconds

    @settings(max_examples=6, deadline=None)
    @given(
        name=st.sampled_from(sorted(GRAPHS)),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_seed_deterministic(self, name, seed):
        config = SearchConfig(num_shards=4, seed=seed)
        a = search_partitioning(GRAPHS[name](), config)
        b = search_partitioning(GRAPHS[name](), config)
        assert [_plan_key(p) for p in a.plans] == [_plan_key(p) for p in b.plans]
        assert a.stats == b.stats

    @settings(max_examples=8, deadline=None)
    @given(
        name=st.sampled_from(sorted(GRAPHS)),
        k=st.sampled_from([2, 4, 8]),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_never_worse_than_replicated(self, name, k, seed):
        result = search_partitioning(
            GRAPHS[name](), SearchConfig(num_shards=k, seed=seed)
        )
        assert result.best.total_seconds <= result.baseline.total_seconds
        assert result.speedup_vs_replicated >= 1.0


class TestSearchMatchesHandAnnotations:
    """Acceptance: search matches or beats the paper's hand annotations."""

    @pytest.mark.parametrize(
        "builder,hand_fn,k",
        [
            (ssd_graph, spatial_seeds, 4),
            (transformer_block_graph, transformer_seeds, 4),
            (resnet_block_graph, spatial_seeds, 2),
        ],
    )
    def test_matches_or_beats(self, builder, hand_fn, k):
        graph = builder()
        partitioner = make_partitioner("v07")
        hand = partitioner.partition(
            graph, ShardingSpec.from_seeds(k, dict(hand_fn(graph, k)))
        )
        result = search_partitioning(
            graph, SearchConfig(num_shards=k, seed=0), partitioner
        )
        assert result.best.total_seconds <= hand.total_seconds


class TestPinnedRegressions:
    def test_transformer_k4_winner(self):
        """The searched transformer plan recovers the hand sharding exactly."""
        g = transformer_block_graph()
        result = search_partitioning(g, SearchConfig(num_shards=4, seed=0))
        hand = make_partitioner("v07").partition(
            g, ShardingSpec.from_seeds(4, dict(transformer_seeds(g, 4)))
        )
        assert result.best.total_seconds == pytest.approx(hand.total_seconds)
        assert result.speedup_vs_replicated == pytest.approx(3.5397, abs=1e-3)
        # Feature-dimension sharding of the weights, as in Section 3.1.
        split_dims = {
            g.node(ref).name: s.dim for ref, s in result.best.spec.assignments
        }
        assert split_dims["embedding"] == 0  # vocab-contracting split
        assert split_dims["ffn_w1"] == 1

    def test_resnet_block_k4_winner_validates(self):
        """At toy scale replication wins, and the winner is bit-exact."""
        result = search_partitioning(
            resnet_block_graph(),
            SearchConfig(num_shards=4, seed=0, seed_nodes="all", validate=True),
        )
        assert result.best.spec.assignments == ()
        assert result.best.total_seconds == pytest.approx(1.431e-05, rel=1e-3)
        assert result.stats.plans_validated == 1
        assert result.validations[0].ok

    def test_searched_beats_hand_on_resnet_block(self):
        g = resnet_block_graph()
        hand = make_partitioner("v07").partition(
            g, ShardingSpec.from_seeds(4, dict(spatial_seeds(g, 4)))
        )
        result = search_partitioning(g, SearchConfig(num_shards=4, seed=0))
        assert result.best.total_seconds < hand.total_seconds


class TestSearchPlumbing:
    def test_describe(self):
        result = search_partitioning(
            resnet_block_graph(), SearchConfig(num_shards=2, seed=0)
        )
        text = result.describe()
        assert "best=" in text and "expanded" in text

    def test_num_shards_one_returns_baseline(self):
        result = search_partitioning(
            resnet_block_graph(), SearchConfig(num_shards=1, seed=0)
        )
        assert result.best.total_seconds == result.baseline.total_seconds
        assert result.speedup_vs_replicated == pytest.approx(1.0)

    def test_stats_counts(self):
        result = search_partitioning(
            resnet_block_graph(), SearchConfig(num_shards=4, seed=0)
        )
        s = result.stats
        assert s.candidates_expanded > 0
        assert s.rounds == len(seedable_nodes(resnet_block_graph(), "handles"))
        assert 0 <= s.candidates_pruned <= s.candidates_expanded

    def test_telemetry_counters(self):
        telemetry.enable()
        telemetry.reset()
        try:
            result = search_partitioning(
                resnet_block_graph(), SearchConfig(num_shards=2, seed=0)
            )
            m = telemetry.metrics
            assert m.total("spmd_search_runs") == 1
            assert (
                m.total("spmd_search_candidates_expanded")
                == result.stats.candidates_expanded
            )
            assert m.total("spmd_search_plans_returned") == len(result.plans)
        finally:
            telemetry.reset()

    def test_search_is_silent(self, recwarn):
        search_partitioning(
            resnet_block_graph(), SearchConfig(num_shards=2, seed=0)
        )
        assert not [
            w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
        ]

"""Halo-exchange and spatial-shard tests."""

import pytest

from repro.comm.halo import (
    conv_halo_rows,
    halo_exchange_time,
    load_imbalance,
    spatial_shard_shape,
)


class TestSpatialShards:
    def test_even_split(self):
        shards = spatial_shard_shape(300, 300, 64, 4)
        assert [s.rows for s in shards] == [75, 75, 75, 75]

    def test_uneven_split_ceiling_first(self):
        shards = spatial_shard_shape(38, 38, 256, 8)
        rows = [s.rows for s in shards]
        assert sum(rows) == 38
        assert max(rows) - min(rows) == 1
        assert rows == sorted(rows, reverse=True)

    def test_elements(self):
        (s,) = spatial_shard_shape(10, 20, 3, 1)
        assert s.elements == 600

    def test_too_many_partitions(self):
        with pytest.raises(ValueError):
            spatial_shard_shape(4, 300, 64, 8)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            spatial_shard_shape(0, 300, 64, 2)
        with pytest.raises(ValueError):
            spatial_shard_shape(300, 300, 64, 0)


class TestLoadImbalance:
    def test_balanced(self):
        shards = spatial_shard_shape(300, 300, 64, 4)
        assert load_imbalance(shards) == pytest.approx(1.0)

    def test_unbalanced_real(self):
        shards = spatial_shard_shape(38, 38, 256, 8)
        imb = load_imbalance(shards)
        assert imb == pytest.approx(5 * 8 / 38)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            load_imbalance([])


class TestHaloExchange:
    def test_zero_for_single_partition(self, pod):
        assert halo_exchange_time(pod, width=300, channels=64, halo_rows=1,
                                  num_partitions=1) == 0.0

    def test_cost_formula(self, pod):
        t = halo_exchange_time(pod, width=300, channels=64, halo_rows=1,
                               dtype_bytes=2, num_partitions=4)
        expected = pod.chip.link_latency + 300 * 64 * 2 / pod.link_bandwidth
        assert t == pytest.approx(expected)

    def test_negative_halo_rejected(self, pod):
        with pytest.raises(ValueError):
            halo_exchange_time(pod, width=1, channels=1, halo_rows=-1)


class TestConvHalo:
    @pytest.mark.parametrize("k,h", [(1, 0), (3, 1), (5, 2), (7, 3)])
    def test_rows(self, k, h):
        assert conv_halo_rows(k) == h

    def test_even_kernel_rejected(self):
        with pytest.raises(ValueError):
            conv_halo_rows(4)

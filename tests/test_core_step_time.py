"""Step-time model tests: the mechanisms behind Figures 6 and 8."""

import pytest

from repro.core.step_time import StepTimeModel
from repro.core.strategy import ParallelismConfig
from repro.hardware.topology import slice_for_chips
from repro.models import bert_large_spec, dlrm_spec, resnet50_spec, ssd_spec, transformer_big_spec


def _model(spec, chips, batch, **kwargs):
    cfg_kwargs = {
        k: kwargs.pop(k)
        for k in ("mp_cores", "spatial_partitioning", "use_weight_update_sharding",
                  "use_2d_allreduce")
        if k in kwargs
    }
    config = ParallelismConfig(num_chips=chips, global_batch=batch, **cfg_kwargs)
    return StepTimeModel(spec, config, **kwargs)


class TestCompute:
    def test_compute_scales_with_per_core_batch(self):
        spec = resnet50_spec()
        a = _model(spec, 256, 65536).compute_time()
        b = _model(spec, 512, 65536).compute_time()
        assert a == pytest.approx(2 * b, rel=0.01)

    def test_efficiency_inversely_scales(self):
        spec = resnet50_spec()
        slow = _model(spec, 256, 65536, mxu_efficiency=0.2).compute_time()
        fast = _model(spec, 256, 65536, mxu_efficiency=0.4).compute_time()
        assert slow == pytest.approx(2 * fast, rel=0.01)

    def test_feature_mp_divides_compute(self):
        spec = transformer_big_spec()
        dp = _model(spec, 1024, 2048).compute_time()
        mp = _model(spec, 1024, 2048, mp_cores=4).compute_time()
        # mp=4 gives each replica 4 cores but also 4x the per-replica batch:
        # per-core work is the same; compare at equal per-replica batch by
        # scaling: compute(mp)/compute(dp) ~ 1 (same global work, same cores)
        assert mp == pytest.approx(dp, rel=0.1)

    def test_spatial_mp_cuts_per_example_latency(self):
        """MP's value is latency at sub-batch-per-core scale: one example
        over 2 cores computes faster than on 1 core, but less than 2x
        (tile imbalance + the unpartitionable fraction)."""
        spec = ssd_spec()
        one_core = _model(spec, 2048, 4096).compute_time()  # 1 example/core
        two_cores = _model(spec, 2048, 2048, mp_cores=2,
                           spatial_partitioning=True).compute_time()
        assert two_cores < one_core
        assert two_cores > one_core / 2

    def test_invalid_efficiency(self):
        with pytest.raises(ValueError):
            _model(resnet50_spec(), 16, 4096, mxu_efficiency=0.0)

    def test_mesh_mismatch(self):
        spec = resnet50_spec()
        config = ParallelismConfig(num_chips=16, global_batch=4096)
        with pytest.raises(ValueError):
            StepTimeModel(spec, config, mesh=slice_for_chips(64))


class TestAllreduce:
    def test_constant_across_scale(self):
        """The Figure 6/8 phenomenon."""
        spec = resnet50_spec()
        t256 = _model(spec, 256, 65536).allreduce_time()
        t4096 = _model(spec, 4096, 65536).allreduce_time()
        assert t4096 < 2 * t256

    def test_grows_with_model_size(self):
        small = _model(resnet50_spec(), 1024, 65536).allreduce_time()
        big = _model(bert_large_spec(), 1024, 8192).allreduce_time()
        assert big > small

    def test_single_replica_free(self):
        spec = transformer_big_spec()
        m = _model(spec, 16, 2048, mp_cores=32)
        assert m.allreduce_time() == 0.0

    def test_flat_ring_slower_at_scale(self):
        spec = resnet50_spec()
        hier = _model(spec, 4096, 65536).allreduce_time()
        flat = _model(spec, 4096, 65536, use_2d_allreduce=False).allreduce_time()
        assert flat > 5 * hier


class TestWeightUpdate:
    def test_wus_divides_update(self):
        spec = bert_large_spec()
        with_wus = _model(spec, 512, 8192).weight_update_time()
        without = _model(spec, 512, 8192,
                         use_weight_update_sharding=False).weight_update_time()
        assert without == pytest.approx(with_wus * 1024, rel=0.01)

    def test_bert_update_fraction_matches_paper(self):
        """Section 3.2: LAMB update is a significant step fraction at 512
        chips without WUS (paper ~18%; we model >8%), negligible with."""
        spec = bert_large_spec()
        no_wus = _model(spec, 512, 8192, use_weight_update_sharding=False,
                        mxu_efficiency=0.6).breakdown()
        frac = no_wus.weight_update / no_wus.device_time
        assert 0.05 < frac < 0.30
        wus = _model(spec, 512, 8192, mxu_efficiency=0.6).breakdown()
        assert wus.weight_update / wus.device_time < 0.01


class TestInfeedAndEmbedding:
    def test_embedding_only_for_dlrm(self):
        assert _model(resnet50_spec(), 256, 65536).embedding_time() == 0.0
        assert _model(dlrm_spec(), 256, 65536).embedding_time() > 0.0

    def test_infeed_scales_with_batch(self):
        spec = resnet50_spec()
        a = _model(spec, 256, 32768).infeed_time()
        b = _model(spec, 256, 65536).infeed_time()
        assert b == pytest.approx(2 * a, rel=0.01)

    def test_step_is_max_of_device_and_infeed(self):
        spec = resnet50_spec()
        m = _model(spec, 256, 65536, input_bandwidth_per_host=1e7)  # starved
        b = m.breakdown()
        assert b.infeed > b.device_time
        assert b.total == b.infeed


class TestBreakdown:
    def test_components_sum(self):
        b = _model(resnet50_spec(), 1024, 65536).breakdown()
        assert b.device_time == pytest.approx(
            b.compute + b.allreduce + b.mp_comm + b.weight_update + b.embedding
        )

    def test_allreduce_fraction(self):
        b = _model(resnet50_spec(), 4096, 65536, mxu_efficiency=0.2).breakdown()
        assert b.allreduce_fraction == pytest.approx(b.allreduce / b.device_time)
        # The paper's 22% +- a few points.
        assert 0.15 < b.allreduce_fraction < 0.30

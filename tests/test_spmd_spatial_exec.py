"""Functional spatial-partitioning tests: sharded conv == direct conv."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spmd.spatial_exec import (
    conv2d_direct,
    halo_exchange,
    shard_height,
    spatial_conv2d,
    spatial_conv_stack,
    unshard_height,
)


def _conv_inputs(rng, h=12, w=10, cin=3, cout=5, k=3):
    x = rng.standard_normal((2, h, w, cin))
    weight = rng.standard_normal((k, k, cin, cout)) * 0.2
    return x, weight


class TestDirectConv:
    def test_identity_kernel(self, rng):
        x = rng.standard_normal((1, 6, 6, 2))
        w = np.zeros((3, 3, 2, 2))
        w[1, 1] = np.eye(2)
        assert np.allclose(conv2d_direct(x, w), x)

    def test_shapes(self, rng):
        x, w = _conv_inputs(rng)
        assert conv2d_direct(x, w).shape == (2, 12, 10, 5)

    def test_even_kernel_rejected(self, rng):
        x = rng.standard_normal((1, 6, 6, 2))
        with pytest.raises(ValueError):
            conv2d_direct(x, np.zeros((2, 2, 2, 2)))

    def test_channel_mismatch(self, rng):
        x = rng.standard_normal((1, 6, 6, 2))
        with pytest.raises(ValueError):
            conv2d_direct(x, np.zeros((3, 3, 4, 2)))


class TestSharding:
    def test_roundtrip(self, rng):
        x = rng.standard_normal((2, 11, 5, 3))
        assert np.array_equal(unshard_height(shard_height(x, 4)), x)

    def test_ceiling_split(self, rng):
        x = rng.standard_normal((1, 11, 5, 3))
        rows = [s.shape[1] for s in shard_height(x, 4)]
        assert rows == [3, 3, 3, 2]

    def test_too_many_shards(self, rng):
        x = rng.standard_normal((1, 4, 5, 3))
        with pytest.raises(ValueError):
            shard_height(x, 8)


class TestHaloExchange:
    def test_rows_from_neighbors(self, rng):
        x = rng.standard_normal((1, 8, 4, 2))
        shards = shard_height(x, 2)
        padded, moved = halo_exchange(shards, 1)
        # Shard 0's bottom halo is shard 1's first row.
        assert np.array_equal(padded[0][:, -1], shards[1][:, 0])
        # Shard 1's top halo is shard 0's last row.
        assert np.array_equal(padded[1][:, 0], shards[0][:, -1])
        # Outer edges zero (SAME padding semantics).
        assert np.all(padded[0][:, 0] == 0)
        assert np.all(padded[1][:, -1] == 0)

    def test_bytes_counted(self, rng):
        x = rng.standard_normal((1, 8, 4, 2))
        shards = shard_height(x, 4)
        _, moved = halo_exchange(shards, 1)
        # 3 interior boundaries x 2 directions x one row of 4x2 float64.
        assert moved == 6 * 4 * 2 * 8

    def test_zero_halo(self, rng):
        x = rng.standard_normal((1, 8, 4, 2))
        shards = shard_height(x, 2)
        padded, moved = halo_exchange(shards, 0)
        assert moved == 0.0
        assert np.array_equal(padded[0], shards[0])


class TestShardedConv:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_matches_direct(self, k, rng):
        x, w = _conv_inputs(rng)
        expected = conv2d_direct(x, w)
        shards, _ = spatial_conv2d(shard_height(x, k), w)
        assert np.allclose(unshard_height(shards), expected, rtol=1e-12)

    def test_5x5_kernel(self, rng):
        x, _ = _conv_inputs(rng, h=16)
        w = rng.standard_normal((5, 5, 3, 4)) * 0.1
        expected = conv2d_direct(x, w)
        shards, moved = spatial_conv2d(shard_height(x, 4), w)
        assert np.allclose(unshard_height(shards), expected, rtol=1e-12)
        assert moved > 0

    def test_stack_matches_direct(self, rng):
        """Multi-layer: halo exchange before every conv, relu between."""
        x, _ = _conv_inputs(rng, h=15)
        weights = [
            rng.standard_normal((3, 3, 3, 6)) * 0.2,
            rng.standard_normal((3, 3, 6, 6)) * 0.2,
            rng.standard_normal((5, 5, 6, 4)) * 0.1,
        ]
        direct = x
        for i, w in enumerate(weights):
            direct = conv2d_direct(direct, w)
            if i + 1 < len(weights):
                direct = np.maximum(direct, 0.0)
        sharded, moved = spatial_conv_stack(x, weights, 3)
        assert np.allclose(sharded, direct, rtol=1e-10)
        assert moved > 0

    def test_halo_traffic_grows_with_shards(self, rng):
        x, w = _conv_inputs(rng, h=24)
        _, moved2 = spatial_conv2d(shard_height(x, 2), w)
        _, moved4 = spatial_conv2d(shard_height(x, 4), w)
        assert moved4 > moved2

    @given(
        h=st.integers(6, 20),
        k=st.integers(1, 4),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_sharded_equals_direct(self, h, k, seed):
        if k > h:
            return
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((1, h, 6, 2))
        w = rng.standard_normal((3, 3, 2, 3)) * 0.3
        expected = conv2d_direct(x, w)
        shards, _ = spatial_conv2d(shard_height(x, k), w)
        assert np.allclose(unshard_height(shards), expected, rtol=1e-10)

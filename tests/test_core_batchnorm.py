"""Distributed batch normalization tests (§4.2)."""

import numpy as np
import pytest

from repro.core.batchnorm import (
    batch_norm_group_cost,
    distributed_batch_norm,
    local_batch_norm,
)


def _shards(rng, n=4, batch=8, feat=5):
    return [rng.standard_normal((batch, feat)) * 3 + 1 for _ in range(n)]


class TestLocal:
    def test_normalizes(self, rng):
        x = rng.standard_normal((32, 4)) * 7 + 2
        y = local_batch_norm(x, np.ones(4), np.zeros(4))
        assert np.allclose(y.mean(axis=0), 0, atol=1e-10)
        assert np.allclose(y.std(axis=0), 1, atol=1e-2)

    def test_gamma_beta(self, rng):
        x = rng.standard_normal((32, 4))
        y = local_batch_norm(x, 2 * np.ones(4), 3 * np.ones(4))
        assert np.allclose(y.mean(axis=0), 3, atol=1e-10)

    def test_shape_check(self, rng):
        with pytest.raises(ValueError):
            local_batch_norm(rng.standard_normal(8), np.ones(1), np.zeros(1))


class TestDistributed:
    def test_global_group_matches_full_batch(self, rng):
        """Full-mesh group == single-device BN over the concatenated batch
        — the equivalence that recovers large-batch statistics."""
        shards = _shards(rng)
        gamma, beta = np.ones(5), np.zeros(5)
        dist = distributed_batch_norm(shards, gamma, beta)
        full = local_batch_norm(np.concatenate(shards), gamma, beta)
        assert np.allclose(np.concatenate(dist.outputs), full, rtol=1e-10)

    def test_group_size_one_is_local(self, rng):
        shards = _shards(rng)
        gamma, beta = np.ones(5), np.zeros(5)
        dist = distributed_batch_norm(shards, gamma, beta, group_size=1)
        for shard, out in zip(shards, dist.outputs):
            assert np.allclose(out, local_batch_norm(shard, gamma, beta))

    def test_intermediate_groups(self, rng):
        shards = _shards(rng, n=4)
        gamma, beta = np.ones(5), np.zeros(5)
        dist = distributed_batch_norm(shards, gamma, beta, group_size=2)
        # Groups (0,1) and (2,3) share moments within but not across.
        assert np.allclose(dist.group_mean[0], dist.group_mean[1])
        assert not np.allclose(dist.group_mean[0], dist.group_mean[2])
        pair = local_batch_norm(np.concatenate(shards[:2]), gamma, beta)
        assert np.allclose(np.concatenate(dist.outputs[:2]), pair, rtol=1e-10)

    def test_group_statistics_denoise(self, rng):
        """Bigger groups -> group mean closer to the population mean."""
        shards = _shards(rng, n=8, batch=4)
        gamma, beta = np.ones(5), np.zeros(5)
        local = distributed_batch_norm(shards, gamma, beta, group_size=1)
        global_ = distributed_batch_norm(shards, gamma, beta, group_size=8)
        pop_mean = np.concatenate(shards).mean(axis=0)
        local_err = np.mean([np.abs(m - pop_mean).mean() for m in local.group_mean])
        global_err = np.mean([np.abs(m - pop_mean).mean() for m in global_.group_mean])
        assert global_err < local_err

    def test_invalid_group_size(self, rng):
        with pytest.raises(ValueError):
            distributed_batch_norm(_shards(rng), np.ones(5), np.zeros(5), group_size=3)

    def test_mismatched_shards(self, rng):
        shards = [rng.standard_normal((4, 5)), rng.standard_normal((6, 5))]
        with pytest.raises(ValueError):
            distributed_batch_norm(shards, np.ones(5), np.zeros(5))

    def test_empty(self):
        with pytest.raises(ValueError):
            distributed_batch_norm([], np.ones(1), np.zeros(1))


class TestCost:
    def test_latency_bound(self):
        """The moment payload is tiny: doubling features barely matters."""
        a = batch_norm_group_cost(64, 32, 70e9, 1e-6)
        b = batch_norm_group_cost(2048, 32, 70e9, 1e-6)
        assert b < 1.1 * a

    def test_single_group_free(self):
        assert batch_norm_group_cost(64, 1, 70e9, 1e-6) == 0.0

    def test_grows_with_group(self):
        assert batch_norm_group_cost(64, 32, 70e9, 1e-6) > batch_norm_group_cost(
            64, 4, 70e9, 1e-6
        )

"""Distributed eval-metric tests (§3.4)."""

import numpy as np
import pytest

from repro.metrics.accuracy import (
    coordinator_top1_accuracy,
    distributed_top1_accuracy,
    pad_eval_dataset,
)


def _shards(rng, n_devices=4, per_device=25, acc=0.6):
    preds, labels, masks = [], [], []
    for _ in range(n_devices):
        lab = rng.integers(0, 10, per_device)
        pred = lab.copy()
        flip = rng.random(per_device) > acc
        pred[flip] = (pred[flip] + 1) % 10
        preds.append(pred)
        labels.append(lab)
        masks.append(np.ones(per_device, dtype=bool))
    return preds, labels, masks


class TestPadding:
    def test_pads_to_size(self, rng):
        x = rng.standard_normal((10, 3))
        y = rng.integers(0, 5, 10)
        xp, yp, mask = pad_eval_dataset(x, y, 16)
        assert xp.shape == (16, 3)
        assert mask.sum() == 10
        assert not mask[10:].any()

    def test_no_padding_needed(self, rng):
        x = rng.standard_normal((8, 2))
        y = rng.integers(0, 2, 8)
        xp, yp, mask = pad_eval_dataset(x, y, 8)
        assert mask.all()

    def test_too_small_total(self, rng):
        with pytest.raises(ValueError):
            pad_eval_dataset(np.zeros((4, 2)), np.zeros(4, int), 2)

    def test_mismatched_sizes(self):
        with pytest.raises(ValueError):
            pad_eval_dataset(np.zeros((4, 2)), np.zeros(5, int), 8)


class TestAccuracy:
    def test_both_paths_agree(self, rng):
        """JAX (all-reduce) and TF (coordinator gather) compute the same
        number — the difference is purely where the reduction runs."""
        preds, labels, masks = _shards(rng)
        jax = distributed_top1_accuracy(preds, labels, masks)
        tf = coordinator_top1_accuracy(preds, labels, masks)
        assert jax == pytest.approx(tf, rel=1e-12)

    def test_exact_value(self):
        preds = [np.array([1, 2, 3]), np.array([4, 5, 6])]
        labels = [np.array([1, 2, 0]), np.array([4, 0, 6])]
        masks = [np.ones(3, bool), np.ones(3, bool)]
        assert distributed_top1_accuracy(preds, labels, masks) == pytest.approx(4 / 6)

    def test_padding_excluded(self):
        """Dummy examples (the paper pads the eval set) must not count."""
        preds = [np.array([1, 9, 9])]
        labels = [np.array([1, 9, 9])]
        masks = [np.array([True, False, False])]
        assert distributed_top1_accuracy(preds, labels, masks) == 1.0
        # The padded rows agree with their labels; including them would
        # still give 1.0, so also test a disagreeing pad.
        preds = [np.array([1, 0, 0])]
        labels = [np.array([1, 9, 9])]
        assert distributed_top1_accuracy(preds, labels, masks) == 1.0

    def test_all_padding_rejected(self):
        preds = [np.array([1])]
        labels = [np.array([1])]
        masks = [np.array([False])]
        with pytest.raises(ValueError):
            distributed_top1_accuracy(preds, labels, masks)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            distributed_top1_accuracy(
                [np.zeros(3)], [np.zeros(4)], [np.ones(3, bool)]
            )

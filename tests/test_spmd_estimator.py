"""SPMD cost estimator tests: tile factors and speedup curves."""

import functools

import pytest

from repro.spmd.estimator import (
    _tile_factor,
    estimate_cost,
    model_parallel_speedup,
)
from repro.spmd.annotations import partial, replicated, split
from repro.spmd.ir import Graph
from repro.spmd.modelgraphs import (
    maskrcnn_graph,
    spatial_seeds,
    ssd_graph,
    transformer_block_graph,
    transformer_seeds,
)
from repro.spmd.partitioner import V06_FEATURES, V07_FEATURES, partition


def _node(shape, op="conv2d"):
    g = Graph()
    if op == "conv2d":
        x = g.input((shape[0], shape[1], shape[2], shape[3]))
        w = g.parameter((3, 3, shape[3], shape[3]))
        return g.node(g.conv2d(x, w))
    x = g.input(shape)
    return g.node(x)


class TestTileFactor:
    def test_replicated_full(self):
        node = _node((1, 64, 64, 8))
        assert _tile_factor(node, replicated(4)) == 1.0

    def test_partial_even(self):
        node = _node((1, 64, 64, 8))
        assert _tile_factor(node, partial(4)) == 0.25

    def test_even_spatial_split(self):
        node = _node((1, 64, 64, 8))
        assert _tile_factor(node, split(4, 1)) == pytest.approx(16 / 64)

    def test_granule_floor(self):
        """Splitting 38 rows over 8 cores pads the 5-row tile to 8."""
        node = _node((1, 38, 38, 8))
        assert _tile_factor(node, split(8, 1)) == pytest.approx(8 / 38)

    def test_split_cannot_exceed_full(self):
        node = _node((1, 4, 64, 8))
        assert _tile_factor(node, split(8, 1)) <= 1.0


class TestEstimateCost:
    def test_unpartitioned_baseline(self):
        g = ssd_graph()
        pg = partition(g, {}, 1)
        cost = estimate_cost(pg)
        assert cost.compute_seconds > 0
        assert cost.comm_seconds == 0.0

    def test_partitioned_cheaper_compute(self):
        g1, g2 = ssd_graph(), ssd_graph()
        base = estimate_cost(partition(g1, {}, 1))
        part = estimate_cost(partition(g2, spatial_seeds(g2, 4), 4))
        assert part.compute_seconds < base.compute_seconds
        assert part.comm_seconds > 0

    def test_total_and_fraction(self):
        g = ssd_graph()
        pg = partition(g, spatial_seeds(g, 4), 4)
        cost = estimate_cost(pg)
        assert cost.total_seconds == pytest.approx(
            cost.compute_seconds + cost.serial_seconds + cost.comm_seconds
        )
        assert 0.0 < cost.comm_fraction < 1.0

    def test_serial_nodes_charged_fully(self):
        g = Graph()
        scores = g.input((1, 4096), name="scores")
        g.topk(scores, 128)
        pg = partition(g, {scores: split(4, 1)}, 4, V06_FEATURES)
        cost = estimate_cost(pg)
        assert cost.serial_seconds > 0


class TestSpeedupCurves:
    def test_monotone_speedups(self):
        sp = model_parallel_speedup(ssd_graph, spatial_seeds, [1, 2, 4, 8])
        assert sp[1] == pytest.approx(1.0)
        assert sp[1] < sp[2] < sp[4] < sp[8]

    def test_sublinear(self):
        sp = model_parallel_speedup(ssd_graph, spatial_seeds, [8])
        assert sp[8] < 8.0

    def test_maskrcnn_scales_better_than_ssd(self):
        """800x1333 images leave more spatial work per tile than 300x300."""
        ssd = model_parallel_speedup(ssd_graph, spatial_seeds, [8])[8]
        mrcnn = model_parallel_speedup(maskrcnn_graph, spatial_seeds, [8])[8]
        assert mrcnn > ssd

    def test_transformer_anchor(self):
        """Paper: ~2.3x on 4 cores; we accept the 2-3.2x band."""
        builder = functools.partial(transformer_block_graph, seq=27)
        sp = model_parallel_speedup(builder, transformer_seeds, [4])
        assert 2.0 < sp[4] < 3.2

    def test_v07_at_least_v06(self):
        for builder, seeds in ((ssd_graph, spatial_seeds),
                               (maskrcnn_graph, spatial_seeds)):
            v07 = model_parallel_speedup(builder, seeds, [8], features=V07_FEATURES)
            v06 = model_parallel_speedup(builder, seeds, [8], features=V06_FEATURES)
            assert v07[8] >= v06[8]

    def test_invalid_core_count(self):
        with pytest.raises(ValueError):
            model_parallel_speedup(ssd_graph, spatial_seeds, [0])

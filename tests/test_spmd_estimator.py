"""SPMD cost estimator tests: tile factors and speedup curves."""

import functools

import pytest

from repro.spmd.annotations import Sharding
from repro.spmd.estimator import (
    _tile_factor,
    estimate_cost,
    model_parallel_speedup,
)
from repro.spmd.ir import Graph
from repro.spmd.modelgraphs import (
    maskrcnn_graph,
    spatial_seeds,
    ssd_graph,
    transformer_block_graph,
    transformer_seeds,
)
from repro.spmd.partitioner import V06_FEATURES, V07_FEATURES, partition
from repro.spmd.plan import ShardingSpec, make_partitioner


def _plan(graph, seeds, k, features=V07_FEATURES):
    return make_partitioner(features).partition(
        graph, ShardingSpec.from_seeds(k, dict(seeds))
    )


def _node(shape, op="conv2d"):
    g = Graph()
    if op == "conv2d":
        x = g.input((shape[0], shape[1], shape[2], shape[3]))
        w = g.parameter((3, 3, shape[3], shape[3]))
        return g.node(g.conv2d(x, w))
    x = g.input(shape)
    return g.node(x)


class TestTileFactor:
    def test_replicated_full(self):
        node = _node((1, 64, 64, 8))
        assert _tile_factor(node, Sharding.replicate(4)) == 1.0

    def test_partial_even(self):
        node = _node((1, 64, 64, 8))
        assert _tile_factor(node, Sharding.partial_sum(4)) == 0.25

    def test_even_spatial_split(self):
        node = _node((1, 64, 64, 8))
        assert _tile_factor(node, Sharding.split(4, 1)) == pytest.approx(16 / 64)

    def test_granule_floor(self):
        """Splitting 38 rows over 8 cores pads the 5-row tile to 8."""
        node = _node((1, 38, 38, 8))
        assert _tile_factor(node, Sharding.split(8, 1)) == pytest.approx(8 / 38)

    def test_split_cannot_exceed_full(self):
        node = _node((1, 4, 64, 8))
        assert _tile_factor(node, Sharding.split(8, 1)) <= 1.0


class TestEstimateCost:
    def test_unpartitioned_baseline(self):
        cost = _plan(ssd_graph(), {}, 1).cost
        assert cost.compute_seconds > 0
        assert cost.comm_seconds == 0.0

    def test_partitioned_cheaper_compute(self):
        g1, g2 = ssd_graph(), ssd_graph()
        base = _plan(g1, {}, 1).cost
        part = _plan(g2, spatial_seeds(g2, 4), 4).cost
        assert part.compute_seconds < base.compute_seconds
        assert part.comm_seconds > 0

    def test_total_and_fraction(self):
        g = ssd_graph()
        cost = _plan(g, spatial_seeds(g, 4), 4).cost
        assert cost.total_seconds == pytest.approx(
            cost.compute_seconds + cost.serial_seconds + cost.comm_seconds
        )
        assert 0.0 < cost.comm_fraction < 1.0

    def test_serial_nodes_charged_fully(self):
        g = Graph()
        scores = g.input((1, 4096), name="scores")
        g.topk(scores, 128)
        cost = _plan(
            g, {scores: Sharding.split(4, 1)}, 4, V06_FEATURES
        ).cost
        assert cost.serial_seconds > 0

    def test_legacy_estimate_cost_warns_and_agrees(self):
        g = ssd_graph()
        plan = _plan(g, spatial_seeds(g, 4), 4)
        with pytest.warns(DeprecationWarning, match="estimate_cost"):
            legacy = estimate_cost(plan.partitioned)
        assert legacy == plan.cost

    def test_legacy_partition_feeds_legacy_estimate(self):
        g = ssd_graph()
        with pytest.warns(DeprecationWarning):
            pg = partition(g, spatial_seeds(g, 4), 4)
        with pytest.warns(DeprecationWarning):
            cost = estimate_cost(pg)
        assert cost == _plan(ssd_graph(), spatial_seeds(g, 4), 4).cost


class TestSpeedupCurves:
    def test_monotone_speedups(self):
        sp = model_parallel_speedup(ssd_graph, spatial_seeds, [1, 2, 4, 8])
        assert sp[1] == pytest.approx(1.0)
        assert sp[1] < sp[2] < sp[4] < sp[8]

    def test_sublinear(self):
        sp = model_parallel_speedup(ssd_graph, spatial_seeds, [8])
        assert sp[8] < 8.0

    def test_maskrcnn_scales_better_than_ssd(self):
        """800x1333 images leave more spatial work per tile than 300x300."""
        ssd = model_parallel_speedup(ssd_graph, spatial_seeds, [8])[8]
        mrcnn = model_parallel_speedup(maskrcnn_graph, spatial_seeds, [8])[8]
        assert mrcnn > ssd

    def test_transformer_anchor(self):
        """Paper: ~2.3x on 4 cores; we accept the 2-3.2x band."""
        builder = functools.partial(transformer_block_graph, seq=27)
        sp = model_parallel_speedup(builder, transformer_seeds, [4])
        assert 2.0 < sp[4] < 3.2

    def test_v07_at_least_v06(self):
        for builder, seeds in ((ssd_graph, spatial_seeds),
                               (maskrcnn_graph, spatial_seeds)):
            v07 = model_parallel_speedup(builder, seeds, [8], features=V07_FEATURES)
            v06 = model_parallel_speedup(builder, seeds, [8], features=V06_FEATURES)
            assert v07[8] >= v06[8]

    def test_speedup_curves_are_warning_free(self, recwarn):
        model_parallel_speedup(ssd_graph, spatial_seeds, [2])
        assert not [
            w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
        ]

    def test_invalid_core_count(self):
        with pytest.raises(ValueError):
            model_parallel_speedup(ssd_graph, spatial_seeds, [0])

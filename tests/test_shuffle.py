"""Shuffle-quality study tests (BERT, §3.5)."""

import numpy as np

from repro.input_pipeline.shuffle import (
    ShuffleQualityReport,
    _stream_for_host,
    simulate_shuffle_policy,
)


class TestStream:
    def test_stream_length(self):
        rng = np.random.default_rng(0)
        stream = _stream_for_host(
            rng, np.arange(4), sequences_per_file=50, buffer_size=16,
            num_samples=100, shuffle_before_repeat=True,
        )
        assert len(stream) == 100

    def test_stream_ids_valid(self):
        rng = np.random.default_rng(0)
        files = np.arange(2, 6)
        stream = _stream_for_host(
            rng, files, sequences_per_file=10, buffer_size=8,
            num_samples=60, shuffle_before_repeat=True,
        )
        assert stream.min() >= 2 * 10
        assert stream.max() < 6 * 10

    def test_large_buffer_spreads_early_batches(self):
        """With a tiny buffer the first samples come mostly from the first
        file; a large buffer mixes files immediately."""
        def first_batch_spread(buffer_size):
            rng = np.random.default_rng(7)
            stream = _stream_for_host(
                rng, np.arange(4), sequences_per_file=100,
                buffer_size=buffer_size, num_samples=50,
                shuffle_before_repeat=True,
            )
            return np.std(stream // 100)

        assert first_batch_spread(400) > first_batch_spread(4)


class TestPolicy:
    def test_report_fields(self):
        rep = simulate_shuffle_policy(
            shuffle_before_repeat=True, buffer_size=64,
            num_runs=2, hosts_sampled=2, num_batches=10,
        )
        assert isinstance(rep, ShuffleQualityReport)
        assert 0.0 < rep.coverage <= 1.0
        assert rep.policy == "shuffle_before_repeat"

    def test_larger_buffer_reduces_run_variance(self):
        """The paper's claim: bigger sequence buffers cut run-to-run
        batch-composition differences."""
        small = simulate_shuffle_policy(
            shuffle_before_repeat=True, buffer_size=16,
            num_runs=5, hosts_sampled=3, num_batches=16, seed=11,
        )
        large = simulate_shuffle_policy(
            shuffle_before_repeat=True, buffer_size=1024,
            num_runs=5, hosts_sampled=3, num_batches=16, seed=11,
        )
        assert large.batch_bias_std < small.batch_bias_std

    def test_policy_labels(self):
        rep = simulate_shuffle_policy(
            shuffle_before_repeat=False, buffer_size=16,
            num_runs=1, hosts_sampled=1, num_batches=4,
        )
        assert rep.policy == "repeat_before_shuffle"

    def test_coverage_high_with_shuffle_before_repeat(self):
        rep = simulate_shuffle_policy(
            shuffle_before_repeat=True, buffer_size=64,
            num_runs=2, hosts_sampled=2, num_batches=20,
        )
        assert rep.coverage > 0.9

"""Topology tests: mesh geometry, links, wraps, multipod structure."""

import networkx as nx
import pytest

from repro.hardware.topology import (
    Coordinate,
    LinkKind,
    TorusMesh,
    multipod,
    slice_for_chips,
)


class TestGeometry:
    def test_chip_count(self, the_multipod):
        assert the_multipod.num_chips == 4096
        assert the_multipod.num_cores == 8192

    def test_multipod_shape(self, the_multipod):
        assert (the_multipod.x_size, the_multipod.y_size) == (128, 32)
        assert the_multipod.wrap_y and not the_multipod.wrap_x

    def test_hosts(self, the_multipod):
        assert the_multipod.num_hosts == 512

    def test_chip_id_roundtrip(self, the_multipod):
        for cid in (0, 1, 31, 32, 4095):
            assert the_multipod.chip_id(the_multipod.coordinate(cid)) == cid

    def test_chip_id_out_of_range(self, the_multipod):
        with pytest.raises(ValueError):
            the_multipod.coordinate(4096)
        with pytest.raises(ValueError):
            the_multipod.chip_id(Coordinate(128, 0))

    def test_chips_iteration_covers_all(self, small_torus):
        chips = list(small_torus.chips())
        assert len(chips) == 16
        assert len(set(chips)) == 16

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            TorusMesh(0, 4)

    def test_tiny_wraps_dropped(self):
        # A wrap on a 2-wide dimension would duplicate the mesh link.
        m = TorusMesh(2, 4, wrap_x=True)
        assert not m.wrap_x


class TestNeighbors:
    def test_interior_chip_has_4_neighbors(self, small_torus):
        assert len(small_torus.neighbors(Coordinate(1, 1))) == 4

    def test_corner_without_wraps(self, small_mesh):
        assert len(small_mesh.neighbors(Coordinate(0, 0))) == 2

    def test_corner_with_wraps(self, small_torus):
        assert len(small_torus.neighbors(Coordinate(0, 0))) == 4

    def test_wrap_neighbor_identity(self, small_torus):
        assert Coordinate(3, 0) in small_torus.neighbors(Coordinate(0, 0))
        assert Coordinate(0, 3) in small_torus.neighbors(Coordinate(0, 0))


class TestLinks:
    def test_link_count_torus(self, small_torus):
        # Full torus: every chip has 4 outgoing links.
        assert len(small_torus.links()) == 16 * 4

    def test_link_count_mesh(self, small_mesh):
        # 2 * (x*(y-1) + (x-1)*y) directed links.
        assert len(small_mesh.links()) == 2 * (4 * 3 + 3 * 4)

    def test_cross_pod_links_marked(self, the_multipod):
        kinds = {}
        for link in the_multipod.links():
            kinds.setdefault(link.kind, 0)
            kinds[link.kind] += 1
        # 3 pod boundaries x 32 rows x 2 directions.
        assert kinds[LinkKind.CROSS_POD] == 3 * 32 * 2
        assert kinds[LinkKind.WRAP] == 128 * 2  # Y wraps only

    def test_cross_pod_latency_higher(self, the_multipod):
        cross = next(
            l for l in the_multipod.links() if l.kind is LinkKind.CROSS_POD
        )
        intra = next(
            l for l in the_multipod.links() if l.kind is LinkKind.INTRA_POD
        )
        assert the_multipod.link_latency(cross) > the_multipod.link_latency(intra)

    def test_link_between_adjacent(self, small_torus):
        link = small_torus.link_between(Coordinate(0, 0), Coordinate(1, 0))
        assert link.axis == "x"
        assert link.kind is LinkKind.INTRA_POD

    def test_link_between_wrap(self, small_torus):
        link = small_torus.link_between(Coordinate(3, 0), Coordinate(0, 0))
        assert link.kind is LinkKind.WRAP

    def test_link_between_non_adjacent_raises(self, small_torus):
        with pytest.raises(ValueError):
            small_torus.link_between(Coordinate(0, 0), Coordinate(2, 0))


class TestGraph:
    def test_networkx_connected(self, small_mesh):
        g = small_mesh.to_networkx()
        assert nx.is_strongly_connected(g)
        assert g.number_of_nodes() == 16

    def test_multipod_graph_diameter_reasonable(self):
        m = multipod(2)  # 64x32
        g = m.to_networkx()
        # X line of 64 + Y ring of 32 -> diameter 63 + 16.
        path = nx.shortest_path_length(g, Coordinate(0, 0), Coordinate(63, 16))
        assert path == 63 + 16

    def test_bisection_bandwidth(self, the_multipod):
        assert the_multipod.bisection_bandwidth() == pytest.approx(
            32 * the_multipod.link_bandwidth
        )


class TestSlices:
    @pytest.mark.parametrize(
        "chips,shape",
        [(16, (4, 4)), (256, (16, 16)), (512, (16, 32)),
         (1024, (32, 32)), (2048, (64, 32)), (4096, (128, 32))],
    )
    def test_slice_shapes(self, chips, shape):
        s = slice_for_chips(chips)
        assert (s.x_size, s.y_size) == shape
        assert s.num_chips == chips

    def test_slice_wraps(self):
        assert not slice_for_chips(256).wrap_y  # 16x16 inside a pod
        assert slice_for_chips(512).wrap_y      # 16x32 spans pod side
        s1024 = slice_for_chips(1024)
        assert s1024.wrap_x and s1024.wrap_y    # full torus

    def test_multipod_slices_have_cross_pod_links(self):
        s = slice_for_chips(2048)
        assert s.cross_pod_every == 32
        assert not s.wrap_x and s.wrap_y

    def test_unknown_slice_size(self):
        with pytest.raises(ValueError, match="no canonical slice"):
            slice_for_chips(100)

    def test_sub_slice(self, pod):
        s = pod.sub_slice(8, 32)
        assert (s.x_size, s.y_size) == (8, 32)
        assert s.wrap_y and not s.wrap_x

    def test_sub_slice_too_big(self, pod):
        with pytest.raises(ValueError):
            pod.sub_slice(64, 8)


class TestMultipodConstructor:
    def test_single_pod_is_full_torus(self):
        p = multipod(1)
        assert p.wrap_x and p.wrap_y
        assert p.num_chips == 1024

    def test_invalid_pod_count(self):
        with pytest.raises(ValueError):
            multipod(0)

    def test_host_assignment_blocks(self, the_multipod):
        assert the_multipod.host_of(Coordinate(0, 0)) == 0
        assert the_multipod.host_of(Coordinate(0, 7)) == 0
        assert the_multipod.host_of(Coordinate(0, 8)) == 1

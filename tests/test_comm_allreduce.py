"""2-D hierarchical all-reduce schedule tests (Section 3.3)."""

import pytest

from repro.comm.allreduce import (
    flat_ring_allreduce,
    gradient_allreduce,
    model_parallel_allreduce,
    two_phase_allreduce,
)
from repro.hardware.topology import slice_for_chips


class TestTwoPhase:
    def test_shard_size(self, the_multipod):
        br = two_phase_allreduce(the_multipod, 128e6)
        assert br.shard_bytes == pytest.approx(128e6 / 4096)

    def test_x_payload_32x_smaller_than_y(self, the_multipod):
        """The paper's observation: X carries 1/32 of the Y payload."""
        br = two_phase_allreduce(the_multipod, 128e6)
        # With the X line's 2x bandwidth penalty and 4x ring length, the X
        # phase is still far below Y.
        assert br.reduce_scatter_x < br.reduce_scatter_y

    def test_symmetric_phases(self, the_multipod):
        br = two_phase_allreduce(the_multipod, 128e6)
        assert br.all_gather_y == pytest.approx(br.reduce_scatter_y)
        assert br.all_gather_x == pytest.approx(br.reduce_scatter_x)

    def test_total_is_sum(self, the_multipod):
        br = two_phase_allreduce(the_multipod, 1e6)
        assert br.total == pytest.approx(
            br.reduce_scatter_y + br.reduce_scatter_x
            + br.all_gather_x + br.all_gather_y
        )

    def test_nearly_constant_across_scales(self):
        """Figures 6/8: all-reduce time ~constant as chips grow."""
        times = {}
        for chips in (256, 1024, 4096):
            mesh = slice_for_chips(chips)
            times[chips] = two_phase_allreduce(mesh, 102e6).total
        assert max(times.values()) < 2.0 * min(times.values())

    def test_single_row_mesh(self):
        mesh = slice_for_chips(16)  # 4x4
        br = two_phase_allreduce(mesh, 1e6)
        assert br.total > 0

    def test_model_parallel_payload_sharing(self, pod):
        """Peer rings share X links: time matches an equivalent DP phase."""
        dp = two_phase_allreduce(pod, 100e6, mp_size=1)
        mp = two_phase_allreduce(pod, 100e6 / 4, mp_size=4)
        # The Y phase moves 1/4 the payload (sharded weights); the ratio of
        # the bandwidth terms is exactly 4 (the latency term is shared).
        latency = 31 * pod.chip.link_latency
        assert (dp.reduce_scatter_y - latency) == pytest.approx(
            4 * (mp.reduce_scatter_y - latency), rel=0.01
        )

    def test_invalid_args(self, pod):
        with pytest.raises(ValueError):
            two_phase_allreduce(pod, -1)
        with pytest.raises(ValueError):
            two_phase_allreduce(pod, 1e6, mp_size=0)
        with pytest.raises(ValueError):
            two_phase_allreduce(pod, 1e6, mp_size=5)


class TestFlatBaseline:
    def test_flat_ring_latency_dominates_at_scale(self, the_multipod):
        """Why the 2-D schedule wins: 4095 latency steps vs ~160."""
        flat = flat_ring_allreduce(the_multipod, 102e6)
        hier = two_phase_allreduce(the_multipod, 102e6)
        assert flat.total > 5 * hier.total

    def test_flat_ring_ok_at_small_scale(self):
        mesh = slice_for_chips(16)
        flat = flat_ring_allreduce(mesh, 102e6)
        hier = two_phase_allreduce(mesh, 102e6)
        # At 16 chips the flat ring is competitive (within 2x either way).
        assert 0.5 < flat.total / hier.total < 2.5


class TestModelParallelAllreduce:
    def test_zero_for_single_core(self, pod):
        assert model_parallel_allreduce(pod, 1, 1e6) == 0.0

    def test_grows_with_payload(self, pod):
        a = model_parallel_allreduce(pod, 4, 1e6)
        b = model_parallel_allreduce(pod, 4, 2e6)
        assert b > a

    def test_open_segment_used(self, pod):
        t = model_parallel_allreduce(pod, 4, 1e6)
        # open line formula: 2 * ((k-1)/k * payload / bw + (k-1) * alpha)
        expected = 2 * ((3 / 4) * 1e6 / pod.link_bandwidth + 3 * pod.chip.link_latency)
        assert t == pytest.approx(expected)

    def test_mp_exceeding_mesh(self):
        mesh = slice_for_chips(16)
        with pytest.raises(ValueError):
            model_parallel_allreduce(mesh, 32, 1e6)


class TestGradientAllreduce:
    def test_dispatch_2d(self, pod):
        assert gradient_allreduce(pod, 1e6, use_2d=True).total == pytest.approx(
            two_phase_allreduce(pod, 1e6).total
        )

    def test_dispatch_flat(self, pod):
        assert gradient_allreduce(pod, 1e6, use_2d=False).total == pytest.approx(
            flat_ring_allreduce(pod, 1e6).total
        )

    def test_flat_with_mp_rejected(self, pod):
        with pytest.raises(ValueError):
            gradient_allreduce(pod, 1e6, mp_size=2, use_2d=False)

"""Event-driven collective schedules vs the closed-form alpha-beta model.

These are the validation tests DESIGN.md section 6 promises: the link-level
simulation of a ring schedule must reproduce the analytic cost exactly for
uncontended rings and for the contended model-peer rings.
"""

import pytest

from repro.comm.cost import reduce_scatter_time, ring_cost_for
from repro.comm.schedule import (
    simulate_ring_all_gather,
    simulate_ring_reduce_scatter,
)
from repro.hardware.rings import model_peer_ring, x_line, y_ring
from repro.hardware.topology import TorusMesh, slice_for_chips

PAYLOAD = 1.0e6


def _analytic(mesh, ring, payload, bidirectional=True, frac=1.0):
    c = ring_cost_for(mesh, ring)
    closed = c.closed and bidirectional
    return reduce_scatter_time(
        c.num_members, payload, c.bandwidth, c.latency,
        closed=closed, hop_links=c.hop_links, bandwidth_fraction=frac,
    )


class TestSingleRingValidation:
    def test_closed_y_ring_bidirectional(self, pod):
        ring = y_ring(pod, 0)
        des = simulate_ring_reduce_scatter(pod, ring, PAYLOAD)
        assert des == pytest.approx(_analytic(pod, ring, PAYLOAD), rel=1e-9)

    def test_closed_ring_unidirectional(self, pod):
        ring = y_ring(pod, 0)
        des = simulate_ring_reduce_scatter(pod, ring, PAYLOAD, bidirectional=False)
        c = ring_cost_for(pod, ring)
        expected = reduce_scatter_time(
            c.num_members, PAYLOAD, c.bandwidth, c.latency,
            closed=False,  # one direction == line bandwidth term
        )
        assert des == pytest.approx(expected, rel=1e-9)

    def test_open_x_line(self):
        mesh = slice_for_chips(512)  # 16x32, X open
        ring = x_line(mesh, 0)
        des = simulate_ring_reduce_scatter(mesh, ring, PAYLOAD)
        assert des == pytest.approx(_analytic(mesh, ring, PAYLOAD), rel=1e-9)

    def test_all_gather_matches_reduce_scatter(self, pod):
        ring = y_ring(pod, 0)
        rs = simulate_ring_reduce_scatter(pod, ring, PAYLOAD)
        ag = simulate_ring_all_gather(pod, ring, PAYLOAD)
        assert ag == pytest.approx(rs)

    def test_small_ring(self):
        mesh = TorusMesh(2, 4, wrap_y=True)
        ring = y_ring(mesh, 0)
        des = simulate_ring_reduce_scatter(mesh, ring, PAYLOAD)
        assert des == pytest.approx(_analytic(mesh, ring, PAYLOAD), rel=1e-9)


class TestConcurrentRings:
    def test_disjoint_y_rings_do_not_contend(self, pod):
        """All 32 column rings run concurrently at single-ring speed."""
        one = simulate_ring_reduce_scatter(pod, y_ring(pod, 0), PAYLOAD)
        rings = [y_ring(pod, x) for x in range(pod.x_size)]
        many = simulate_ring_reduce_scatter(pod, rings, PAYLOAD)
        assert many == pytest.approx(one, rel=1e-9)

    def test_peer_rings_share_bandwidth(self, pod):
        """mp peer rings contend on X links: the DES shows the 1/mp
        bandwidth share the analytic model charges."""
        mp = 4
        rings = [model_peer_ring(pod, 0, mp, p) for p in range(mp)]
        des = simulate_ring_reduce_scatter(pod, rings, PAYLOAD)
        expected = _analytic(pod, rings[0], PAYLOAD, frac=1.0 / mp)
        assert des == pytest.approx(expected, rel=1e-9)

    def test_single_peer_ring_store_and_forward(self, pod):
        """A lone multi-hop ring in the DES forwards chunks segment by
        segment (store-and-forward), which is equivalent to 1/hop_links of
        a link's bandwidth — the same aggregate the full set of peer rings
        achieves by contention.  The analytic model always charges that
        share because the schedule always runs all peer rings together."""
        ring = model_peer_ring(pod, 0, 4, 0)
        des = simulate_ring_reduce_scatter(pod, ring, PAYLOAD)
        expected = _analytic(pod, ring, PAYLOAD, frac=1.0 / ring.hop_stride)
        assert des == pytest.approx(expected, rel=1e-9)


class TestEdgeCases:
    def test_zero_payload(self, pod):
        ring = y_ring(pod, 0)
        des = simulate_ring_reduce_scatter(pod, ring, 0.0)
        # Only latency terms remain.
        assert des == pytest.approx(31 * pod.chip.link_latency, rel=1e-9)

    def test_negative_payload_rejected(self, pod):
        with pytest.raises(ValueError):
            simulate_ring_reduce_scatter(pod, y_ring(pod, 0), -1.0)

"""GPU cluster comparator tests."""

import pytest

from repro.hardware.gpu import GpuCluster, dgx_cluster
from repro.hardware.chip import GPU_A100


class TestGpuCluster:
    def test_node_count(self):
        c = dgx_cluster(64, "a100")
        assert c.num_nodes == 8

    def test_single_node(self):
        c = dgx_cluster(8, "a100")
        assert c.num_nodes == 1

    def test_invalid_gpu_count(self):
        with pytest.raises(ValueError):
            GpuCluster(GPU_A100, 0)

    def test_non_multiple_of_node(self):
        with pytest.raises(ValueError):
            GpuCluster(GPU_A100, 12, gpus_per_node=8)

    def test_generations(self):
        assert dgx_cluster(16, "v100").chip.name == "gpu-v100"
        with pytest.raises(ValueError):
            dgx_cluster(16, "h100")


class TestGpuAllreduce:
    def test_zero_payload(self):
        assert dgx_cluster(64).allreduce_time(0.0) == pytest.approx(
            dgx_cluster(64).allreduce_time(0.0)
        )

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            dgx_cluster(64).allreduce_time(-1)

    def test_single_gpu_free(self):
        c = GpuCluster(GPU_A100, 1, gpus_per_node=1)
        assert c.allreduce_time(1e9) == 0.0

    def test_intra_node_only(self):
        c = dgx_cluster(8)
        t = c.allreduce_time(1e9)
        # reduce-scatter + all-gather over NVLink: 2 * 7/8 * 1e9/250e9 + latency
        assert t == pytest.approx(2 * (7 / 8) * 1e9 / 250e9 + 14 * 2e-6, rel=0.01)

    def test_multi_node_slower_than_single(self):
        single = dgx_cluster(8).allreduce_time(1e9)
        multi = dgx_cluster(256).allreduce_time(1e9)
        assert multi > single

    def test_allreduce_scale_insensitive_at_large_n(self):
        """Ring terms converge: 512 -> 2048 GPUs barely changes time."""
        a = dgx_cluster(512).allreduce_time(668e6)
        b = dgx_cluster(2048).allreduce_time(668e6)
        assert b < 1.5 * a

    def test_compute_time(self):
        c = dgx_cluster(8)
        assert c.compute_time(312e12, 1.0) == pytest.approx(1.0)


class TestTpuVsGpuInterconnect:
    def test_tpu_torus_beats_same_generation_ib_hierarchy(self, the_multipod):
        """The Figure 11 mechanism: for BERT-sized gradients at 2048 chips,
        the 2-D torus all-reduce beats the same-generation (V100) NVLink+IB
        hierarchy.  (A100-generation interconnect is newer and faster per
        link, so the comparison is made within the TPU-v3 generation.)"""
        from repro.comm.allreduce import two_phase_allreduce

        payload = 668e6  # BERT bf16 gradients
        tpu = two_phase_allreduce(the_multipod, payload).total
        gpu = dgx_cluster(2048, "v100").allreduce_time(payload)
        assert tpu < gpu

"""Bit-identity of the vectorized collective kernels vs the references.

The vectorized ring / 2-D hierarchical kernels in
:mod:`repro.runtime.collectives` claim to preserve the *exact* ring
accumulation order of the step-by-step reference implementations — every
output bit, for every dtype policy, including the bf16 per-hop rounding.
These tests pin that claim with hypothesis across mesh shapes (1xN, Nx1,
XxY), ragged payload sizes that exercise the padding paths, and adversarial
special values (signed zeros, NaN, infinities, overflow).
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.collectives import (
    _reference_ring_all_gather,
    _reference_ring_all_reduce,
    _reference_ring_reduce_scatter,
    _reference_two_phase_all_reduce,
    ring_all_gather,
    ring_all_reduce,
    ring_reduce_scatter,
    two_phase_all_reduce,
)

POLICIES = ["f32", "bf16", "f64"]


def _assert_bit_identical(got: np.ndarray, want: np.ndarray) -> None:
    got = np.asarray(got)
    want = np.asarray(want)
    assert got.shape == want.shape
    assert got.dtype == want.dtype
    # Byte comparison: equal NaNs count as identical, -0.0 != +0.0.
    assert got.tobytes() == want.tobytes()


def _inputs(n: int, size: int, seed: int) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    arrays = []
    for _ in range(n):
        a = rng.standard_normal(size).astype(np.float32)
        # Mix in magnitudes that round differently under bf16 and values
        # whose partial sums cancel, so per-hop rounding order matters.
        a *= rng.choice([1.0, 256.0, 2.0**-20], size=size).astype(np.float32)
        arrays.append(a)
    return arrays


@given(
    n=st.integers(min_value=1, max_value=16),
    size=st.integers(min_value=1, max_value=200),
    policy=st.sampled_from(POLICIES),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=120, deadline=None)
def test_ring_reduce_scatter_bit_identical(n, size, policy, seed):
    arrays = _inputs(n, size, seed)
    got = ring_reduce_scatter(arrays, policy)
    want = _reference_ring_reduce_scatter(arrays, policy)
    assert got.padded_size == want.padded_size
    assert got.shape == want.shape
    for g, w in zip(got.shards, want.shards):
        _assert_bit_identical(g, w)


@given(
    n=st.integers(min_value=1, max_value=12),
    size=st.integers(min_value=1, max_value=150),
    policy=st.sampled_from(POLICIES),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=100, deadline=None)
def test_ring_all_reduce_bit_identical(n, size, policy, seed):
    arrays = _inputs(n, size, seed)
    got = ring_all_reduce(arrays, policy)
    want = _reference_ring_all_reduce(arrays, policy)
    assert len(got) == len(want) == n
    for g, w in zip(got, want):
        _assert_bit_identical(g, w)


@given(
    n=st.integers(min_value=1, max_value=10),
    size=st.integers(min_value=1, max_value=120),
    policy=st.sampled_from(POLICIES),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=60, deadline=None)
def test_ring_all_gather_bit_identical(n, size, policy, seed):
    sv = ring_reduce_scatter(_inputs(n, size, seed), policy)
    got = ring_all_gather(sv)
    want = _reference_ring_all_gather(sv)
    for g, w in zip(got, want):
        _assert_bit_identical(g, w)


@given(
    x=st.integers(min_value=1, max_value=5),
    y=st.integers(min_value=1, max_value=5),
    size=st.integers(min_value=1, max_value=100),
    policy=st.sampled_from(POLICIES),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=100, deadline=None)
def test_two_phase_bit_identical(x, y, size, policy, seed):
    flat = _inputs(x * y, size, seed)
    grid = [[flat[i * y + j] for j in range(y)] for i in range(x)]
    got = two_phase_all_reduce(grid, policy)
    want = _reference_two_phase_all_reduce(grid, policy)
    for gcol, wcol in zip(got, want):
        for g, w in zip(gcol, wcol):
            _assert_bit_identical(g, w)


def test_two_phase_shard_transform_bit_identical():
    rng = np.random.default_rng(3)
    grid = [
        [rng.standard_normal(37).astype(np.float32) for _ in range(3)]
        for _ in range(2)
    ]
    transform = lambda s: s * np.float32(0.5)  # noqa: E731
    for policy in POLICIES:
        got = two_phase_all_reduce(grid, policy, shard_transform=transform)
        want = _reference_two_phase_all_reduce(
            grid, policy, shard_transform=transform
        )
        for gcol, wcol in zip(got, want):
            for g, w in zip(gcol, wcol):
                _assert_bit_identical(g, w)


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("n", [1, 2, 4, 7])
def test_special_values_bit_identical(policy, n):
    """Signed zeros, NaN, +/-inf, and overflow follow the reference bits."""
    rng = np.random.default_rng(11)
    size = 29
    arrays = []
    for d in range(n):
        a = rng.standard_normal(size).astype(np.float32)
        a[d % size] = -0.0
        a[(d + 3) % size] = np.nan
        a[(d + 5) % size] = np.inf
        a[(d + 7) % size] = -np.inf
        a[(d + 11) % size] = np.float32(3e38)  # overflow when summed
        arrays.append(a)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        got = ring_all_reduce(arrays, policy)
        want = _reference_ring_all_reduce(arrays, policy)
        for g, w in zip(got, want):
            _assert_bit_identical(g, w)
        grid = [[arrays[i] for i in range(n)]]
        got2 = two_phase_all_reduce(grid, policy)
        want2 = _reference_two_phase_all_reduce(grid, policy)
        for gcol, wcol in zip(got2, want2):
            for g, w in zip(gcol, wcol):
                _assert_bit_identical(g, w)


def test_grid_opposite_infinity_columns_bit_identical():
    """Finite inputs can saturate to +inf in one column and -inf in the
    other; the X phase then meets opposite infinities and must produce NaN
    exactly where the reference does (the fast-path re-decision)."""
    big = np.float32(3.0e38)
    grid = [
        [np.full(8, big, dtype=np.float32), np.full(8, big, dtype=np.float32)],
        [np.full(8, -big, dtype=np.float32), np.full(8, -big, dtype=np.float32)],
    ]
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        for policy in POLICIES:
            got = two_phase_all_reduce(grid, policy)
            want = _reference_two_phase_all_reduce(grid, policy)
            for gcol, wcol in zip(got, want):
                for g, w in zip(gcol, wcol):
                    _assert_bit_identical(g, w)

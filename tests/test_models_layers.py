"""Layer forward/backward tests with numerical gradient checks."""

import numpy as np
import pytest

from repro.models.layers import (
    dense_backward,
    dense_forward,
    layer_norm,
    layer_norm_backward,
    relu,
    relu_backward,
    softmax,
    softmax_cross_entropy,
)


def numerical_grad(f, x, eps=1e-6):
    """Central-difference gradient of scalar f wrt array x."""
    g = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        old = x[idx]
        x[idx] = old + eps
        hi = f()
        x[idx] = old - eps
        lo = f()
        x[idx] = old
        g[idx] = (hi - lo) / (2 * eps)
        it.iternext()
    return g


class TestDense:
    def test_forward_shapes(self, rng):
        y = dense_forward(rng.standard_normal((4, 3)), rng.standard_normal((3, 5)))
        assert y.shape == (4, 5)

    def test_forward_with_bias(self, rng):
        x = rng.standard_normal((2, 3))
        w = rng.standard_normal((3, 4))
        b = rng.standard_normal(4)
        assert np.allclose(dense_forward(x, w, b), x @ w + b)

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            dense_forward(rng.standard_normal((2, 3)), rng.standard_normal((4, 5)))

    def test_backward_matches_numerical(self, rng):
        x = rng.standard_normal((3, 4))
        w = rng.standard_normal((4, 2))
        target = rng.standard_normal((3, 2))

        def loss():
            return 0.5 * np.sum((x @ w - target) ** 2)

        dy = x @ w - target
        dx, dw, db = dense_backward(x, w, dy)
        assert np.allclose(dw, numerical_grad(loss, w), atol=1e-5)
        assert np.allclose(dx, numerical_grad(loss, x), atol=1e-5)
        assert np.allclose(db, dy.sum(axis=0))


class TestRelu:
    def test_forward(self):
        assert np.array_equal(relu(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0])

    def test_backward_masks(self):
        x = np.array([-1.0, 0.5, 2.0])
        dy = np.ones(3)
        assert np.array_equal(relu_backward(x, dy), [0.0, 1.0, 1.0])


class TestSoftmaxCrossEntropy:
    def test_softmax_rows_sum_to_one(self, rng):
        p = softmax(rng.standard_normal((5, 7)))
        assert np.allclose(p.sum(axis=-1), 1.0)

    def test_softmax_stability(self):
        p = softmax(np.array([[1000.0, 1000.0]]))
        assert np.allclose(p, 0.5)

    def test_loss_of_perfect_prediction(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        labels = np.array([0, 1])
        loss, _ = softmax_cross_entropy(logits, labels)
        assert loss == pytest.approx(0.0, abs=1e-6)

    def test_grad_matches_numerical(self, rng):
        logits = rng.standard_normal((4, 3))
        labels = np.array([0, 2, 1, 1])

        def loss():
            return softmax_cross_entropy(logits, labels)[0]

        _, dlogits = softmax_cross_entropy(logits, labels)
        assert np.allclose(dlogits, numerical_grad(loss, logits), atol=1e-5)

    def test_label_shape_check(self, rng):
        with pytest.raises(ValueError):
            softmax_cross_entropy(rng.standard_normal((4, 3)), np.zeros(5, int))


class TestLayerNorm:
    def test_normalizes(self, rng):
        x = rng.standard_normal((6, 8)) * 5 + 3
        y, _ = layer_norm(x, np.ones(8), np.zeros(8))
        assert np.allclose(y.mean(axis=-1), 0.0, atol=1e-10)
        assert np.allclose(y.std(axis=-1), 1.0, atol=1e-3)

    def test_backward_matches_numerical(self, rng):
        x = rng.standard_normal((3, 5))
        gamma = rng.standard_normal(5)
        beta = rng.standard_normal(5)
        target = rng.standard_normal((3, 5))

        def loss():
            y, _ = layer_norm(x, gamma, beta)
            return 0.5 * np.sum((y - target) ** 2)

        y, cache = layer_norm(x, gamma, beta)
        dy = y - target
        dx, dgamma, dbeta = layer_norm_backward(dy, cache)
        assert np.allclose(dx, numerical_grad(loss, x), atol=1e-4)
        assert np.allclose(dgamma, numerical_grad(loss, gamma), atol=1e-4)
        assert np.allclose(dbeta, numerical_grad(loss, beta), atol=1e-4)

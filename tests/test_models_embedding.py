"""DLRM embedding partitioning and interaction-masking tests (§4.6)."""

import numpy as np
import pytest

from repro.models.embedding import (
    EmbeddingTableSpec,
    ShardedEmbedding,
    criteo_tables,
    expand_weights_for_mask,
    interaction_gather,
    interaction_masked,
    plan_embedding_placement,
)

HBM = 32 * 2**30


class TestTableSpecs:
    def test_bytes(self):
        t = EmbeddingTableSpec("a", rows=1000, dim=128)
        assert t.bytes == 1000 * 128 * 4

    def test_validation(self):
        with pytest.raises(ValueError):
            EmbeddingTableSpec("a", rows=0, dim=8)

    def test_criteo_tables_heavy_tailed(self):
        tables = criteo_tables()
        assert len(tables) == 26
        sizes = sorted(t.bytes for t in tables)
        assert sizes[-1] > 10 * sizes[len(sizes) // 2]

    def test_criteo_does_not_fit_one_chip(self):
        """The paper: partitioning 'is actually necessary to run the model'."""
        total = sum(t.bytes for t in criteo_tables())
        assert total > HBM


class TestPlacement:
    def test_fits_at_paper_scale(self):
        plan = plan_embedding_placement(criteo_tables(), 256, HBM)
        assert plan.fits(HBM)
        assert plan.sharded  # the big tables are split
        assert plan.replicated  # the small ones are not

    def test_single_chip_raises(self):
        with pytest.raises(MemoryError):
            plan_embedding_placement(criteo_tables(), 1, HBM)

    def test_small_tables_replicate(self):
        tables = [EmbeddingTableSpec("tiny", 100, 16)]
        plan = plan_embedding_placement(tables, 8, HBM)
        assert plan.replicated == tuple(tables)
        assert not plan.sharded

    def test_per_chip_accounting(self):
        tables = [
            EmbeddingTableSpec("small", 1000, 16),       # replicated
            EmbeddingTableSpec("large", 10_000_000, 64),  # sharded
        ]
        plan = plan_embedding_placement(tables, 4, HBM)
        expected = tables[0].bytes + tables[1].bytes / 4
        assert plan.per_chip_bytes() == pytest.approx(expected)

    def test_invalid_chips(self):
        with pytest.raises(ValueError):
            plan_embedding_placement([], 0, HBM)


class TestShardedLookup:
    def test_matches_direct_indexing(self, rng):
        table = rng.standard_normal((97, 8))  # uneven rows
        se = ShardedEmbedding(table, 4)
        ids = rng.integers(0, 97, 64)
        assert np.allclose(se.lookup(ids), table[ids])

    def test_comm_bytes_counted(self, rng):
        table = rng.standard_normal((100, 8))
        se = ShardedEmbedding(table, 4)
        # All ids owned by the requester: no traffic.
        se.lookup(np.arange(10), requester=0)
        assert se.comm_bytes == 0.0
        # Remote ids: dim * itemsize per id.
        se.lookup(np.array([50, 51]), requester=0)
        assert se.comm_bytes == pytest.approx(2 * 8 * table.itemsize)

    def test_out_of_range(self, rng):
        se = ShardedEmbedding(rng.standard_normal((10, 4)), 2)
        with pytest.raises(IndexError):
            se.lookup(np.array([10]))

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            ShardedEmbedding(rng.standard_normal(10), 2)
        with pytest.raises(ValueError):
            ShardedEmbedding(rng.standard_normal((10, 4)), 0)


class TestInteractionMasking:
    def test_gather_shape(self, rng):
        feats = rng.standard_normal((6, 5, 7))
        out = interaction_gather(feats)
        assert out.shape == (6, 10)

    def test_masked_shape(self, rng):
        feats = rng.standard_normal((6, 5, 7))
        out = interaction_masked(feats)
        assert out.shape == (6, 25)

    def test_equivalence_through_fc(self, rng):
        """The paper's claim: masking + adjusted FC == gather exactly."""
        feats = rng.standard_normal((4, 6, 3))
        w = rng.standard_normal((15, 2))
        gathered = interaction_gather(feats) @ w
        masked = interaction_masked(feats) @ expand_weights_for_mask(w, 6)
        assert np.allclose(gathered, masked, rtol=1e-12)

    def test_masked_zeros_where_redundant(self, rng):
        feats = rng.standard_normal((1, 3, 2))
        out = interaction_masked(feats).reshape(3, 3)
        assert out[0, 0] == 0.0  # diagonal
        assert out[0, 1] == 0.0  # upper triangle
        assert out[1, 0] != 0.0  # lower triangle kept

    def test_weight_expansion_validation(self, rng):
        with pytest.raises(ValueError):
            expand_weights_for_mask(rng.standard_normal((9, 2)), 6)

    def test_input_rank_checks(self, rng):
        with pytest.raises(ValueError):
            interaction_gather(rng.standard_normal((4, 5)))
        with pytest.raises(ValueError):
            interaction_masked(rng.standard_normal((4, 5)))

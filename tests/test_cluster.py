"""Multi-tenant elastic cluster scheduler tests.

Covers the slice allocator, single-seed sub-seed derivation, the pinned
two-job chaos trace, priority preemption with zero lost steps, elastic
shrink/regrow across a chip-death wave with bit-identical solo replays,
admission retry/backoff/rejection, the shared RetryPolicy consolidation
(link retries and admission run the same dataclass, bit-identically),
the 100-tenant label-cardinality guard, and the shared GoodputAccounting
schema between ChaosReport and JobReport.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import telemetry
from repro.cluster import (
    COMPLETED,
    PENDING,
    REJECTED,
    ClusterConfig,
    ClusterScheduler,
    ClusterState,
    JobReport,
    JobSpec,
    derive_subseed,
    run_cluster,
    solo_replay,
)
from repro.comm.schedule import simulate_degraded_reduce_scatter
from repro.core.trainer import TrainerConfig
from repro.hardware.rings import y_ring
from repro.hardware.topology import TorusMesh
from repro.models.mlp import MLP
from repro.optim.adam import Adam
from repro.resilience.chaos import ChaosConfig, ChaosReport, GoodputAccounting, run_chaos
from repro.resilience.faults import (
    ChipFailure,
    FaultPlan,
    LinkFault,
    PreemptionSignal,
    RetryPolicy,
)
from repro.telemetry.registry import OVERFLOW_COUNTER, OVERFLOW_KEY


@pytest.fixture(autouse=True)
def _fresh_telemetry():
    telemetry.reset()
    yield
    telemetry.reset()


def _trainer_config() -> TrainerConfig:
    return TrainerConfig(
        model=MLP([8, 16, 4]), optimizer=Adam(learning_rate=0.01),
        strategy="wus",
    )


def _batch_fn_factory(job_seed: int):
    def batch(step: int):
        rng = np.random.default_rng((job_seed, step))
        return rng.standard_normal((12, 8)), rng.integers(0, 4, size=12)

    return batch


def _params_equal(a, b) -> bool:
    return a is not None and b is not None and all(
        np.array_equal(a[k], b[k]) for k in b
    )


class TestClusterState:
    def test_first_fit_is_row_major(self):
        state = ClusterState((4, 4))
        a = state.allocate("a", (2, 2))
        assert (a.x0, a.y0, a.width, a.height) == (0, 0, 2, 2)
        b = state.allocate("b", (2, 2))
        assert (b.x0, b.y0) == (0, 2)
        c = state.allocate("c", (2, 2))
        assert (c.x0, c.y0) == (2, 0)

    def test_rotated_orientation_is_tried(self):
        state = ClusterState((2, 4))
        assert state.allocate("tall", (4, 2)) is not None
        slc = state.slice_of("tall")
        assert slc.shape == (2, 4)

    def test_full_pod_rejects_then_release_frees(self):
        state = ClusterState((2, 2))
        assert state.allocate("a", (2, 2)) is not None
        assert state.allocate("b", (2, 2)) is None
        state.release("a")
        assert state.allocate("b", (2, 2)) is not None

    def test_double_allocate_raises(self):
        state = ClusterState((2, 2))
        state.allocate("a", (1, 1))
        with pytest.raises(ValueError):
            state.allocate("a", (1, 1))

    def test_dead_chip_blocks_allocation_until_healed(self):
        state = ClusterState((2, 2))
        state.fail_chip((0, 0), now_s=1.0)
        assert state.allocate("a", (2, 2)) is None
        assert state.heal_ready(5.0, heal_after_s=10.0) == ()
        assert state.heal_ready(11.0, heal_after_s=10.0) == ((0, 0),)
        state.heal_chip((0, 0))
        assert state.allocate("a", (2, 2)) is not None

    def test_fail_chip_reports_owner_and_alive_in_shrinks(self):
        state = ClusterState((2, 2))
        state.allocate("a", (2, 2))
        assert state.fail_chip((1, 1), now_s=0.0) == "a"
        assert state.alive_in("a") == ((0, 0), (0, 1), (1, 0))
        assert state.dead_chips == 1

    def test_find_anchor_with_hypothetical_eviction(self):
        state = ClusterState((2, 2))
        state.allocate("a", (2, 2))
        assert state.find_anchor((2, 2)) is None
        assert state.find_anchor((2, 2), evictable=frozenset(("a",))) == (
            0, 0, 2, 2,
        )

    def test_hosts_of_matches_host_map_blocks(self):
        state = ClusterState((4, 4), chips_per_host=8)
        state.allocate("a", (2, 4))
        # Chips enumerate x-major: host 0 drives x in {0, 1}, exactly the
        # (2, 4) slice anchored at the origin.
        assert state.hosts_of("a") == (0,)
        state.allocate("b", (2, 4))
        assert state.hosts_of("b") == (1,)


class TestDeriveSubseed:
    def test_pinned_values(self):
        # Pinned: numpy documents SeedSequence mixing as stable across
        # platforms and versions.  A change here breaks every recorded
        # cluster trace.
        assert derive_subseed(2021, "faults") == 1701088348
        assert derive_subseed(2021, "init", "tenant-a") == 2996706732
        assert derive_subseed(2021, "batches", "tenant-a") == 1344787327
        assert derive_subseed(2021, "retry", "tenant-a") == 631998360
        assert derive_subseed(7, "x", 3) == 2745097216

    def test_distinct_paths_distinct_streams(self):
        seeds = {
            derive_subseed(2021, "init", f"tenant-{i}") for i in range(100)
        }
        assert len(seeds) == 100

    def test_pure_function_of_seed_and_path(self):
        assert derive_subseed(5, "a", 1) == derive_subseed(5, "a", 1)
        assert derive_subseed(5, "a", 1) != derive_subseed(6, "a", 1)


def _contention_specs(state_bytes: int = int(1e9)) -> list[JobSpec]:
    return [
        JobSpec(
            name="tenant-low", slice_shape=(2, 2), target_steps=12,
            priority=0, checkpoint_interval=4, state_bytes=state_bytes,
        ),
        JobSpec(
            name="tenant-high", slice_shape=(2, 2), target_steps=8,
            priority=1, arrival_tick=5, checkpoint_interval=4,
            state_bytes=state_bytes,
        ),
    ]


class TestTwoJobTracePin:
    """Satellite: one ``--seed`` reproduces a multi-job chaos run exactly."""

    PINNED = [
        (0, "admit", "tenant-low"),
        (5, "preempt", "tenant-low"),
        (5, "admit", "tenant-high"),
        (6, "admission_retry", "tenant-low"),
        (9, "admission_retry", "tenant-low"),
        (12, "complete", "tenant-high"),
        (14, "admit", "tenant-low"),
        (21, "complete", "tenant-low"),
    ]

    def test_trace_is_pinned(self):
        config = ClusterConfig(mesh_shape=(2, 2), chips_per_host=2, seed=2021)
        result = run_cluster(_contention_specs(), config)
        assert result.trace() == self.PINNED
        assert result.ticks == 22

    def test_same_seed_same_trace_different_seed_differs_somewhere(self):
        config = ClusterConfig(mesh_shape=(2, 2), chips_per_host=2, seed=2021)
        again = run_cluster(_contention_specs(), config)
        assert again.trace() == self.PINNED
        other = run_cluster(
            _contention_specs(),
            ClusterConfig(mesh_shape=(2, 2), chips_per_host=2, seed=9),
        )
        # Retry jitter is derived from the seed: the raw backoff delays
        # differ even where tick quantization hides it in the trace.
        def delays(result):
            return [
                info["delay_s"]
                for _, event, _, info in result.events
                if event == "admission_retry"
            ]

        assert delays(other) != delays(again)
        assert delays(again) == delays(
            run_cluster(
                _contention_specs(),
                ClusterConfig(mesh_shape=(2, 2), chips_per_host=2, seed=2021),
            )
        )


class TestPriorityPreemption:
    def _run(self):
        trainer_config = _trainer_config()
        specs = [
            JobSpec(
                name=spec.name, slice_shape=spec.slice_shape,
                target_steps=spec.target_steps, priority=spec.priority,
                arrival_tick=spec.arrival_tick,
                checkpoint_interval=spec.checkpoint_interval,
                trainer_config=trainer_config,
                batch_fn_factory=_batch_fn_factory,
            )
            for spec in _contention_specs(state_bytes=0)
        ]
        config = ClusterConfig(mesh_shape=(2, 2), chips_per_host=2, seed=2021)
        return specs, config, run_cluster(specs, config)

    def test_evicted_tenant_loses_zero_steps_and_completes(self):
        _, _, result = self._run()
        low = result.jobs["tenant-low"]
        high = result.jobs["tenant-high"]
        assert low.state == COMPLETED and high.state == COMPLETED
        assert low.preemptions == 1
        assert low.lost_steps == 0  # grace-window save fit the window
        assert high.preemptions == 0
        assert high.goodput == 1.0

    def test_both_tenants_replay_bit_identically_solo(self):
        specs, config, result = self._run()
        for spec in specs:
            report = result.jobs[spec.name]
            replay = solo_replay(spec, report, config.seed)
            assert _params_equal(report.final_params, replay), spec.name

    def test_lower_priority_never_preempts_higher(self):
        # Same shape, but the late arrival has *lower* priority: it must
        # wait for the running tenant to finish, never evict it.
        specs = [
            JobSpec(name="first", slice_shape=(2, 2), target_steps=8,
                    priority=1, state_bytes=0),
            JobSpec(name="later", slice_shape=(2, 2), target_steps=4,
                    priority=0, arrival_tick=2, state_bytes=0),
        ]
        config = ClusterConfig(mesh_shape=(2, 2), chips_per_host=2, seed=0)
        result = run_cluster(specs, config)
        assert result.jobs["first"].preemptions == 0
        assert result.jobs["first"].state == COMPLETED
        assert result.jobs["later"].state == COMPLETED
        assert result.jobs["later"].admitted_tick >= 8


class TestElasticShrinkRegrow:
    def _run(self):
        trainer_config = _trainer_config()
        specs = [
            JobSpec(
                name="wave-victim", slice_shape=(2, 2), target_steps=16,
                min_chips=2, checkpoint_interval=4,
                trainer_config=trainer_config,
                batch_fn_factory=_batch_fn_factory,
            ),
            JobSpec(
                name="bystander", slice_shape=(2, 2), target_steps=16,
                min_chips=2, checkpoint_interval=4,
                trainer_config=trainer_config,
                batch_fn_factory=_batch_fn_factory,
            ),
        ]
        # Name-ordered admission: "bystander" gets columns 0-1, the victim
        # columns 2-3 — the wave hits two of the victim's chips.
        plan = FaultPlan(
            seed=2021,
            chip_failures=(
                ChipFailure(device=(2, 0), at_step=6),
                ChipFailure(device=(2, 1), at_step=6),
            ),
        )
        config = ClusterConfig(
            mesh_shape=(4, 2), chips_per_host=2, heal_after_s=8.0, seed=2021,
        )
        return specs, config, run_cluster(specs, config, plan=plan)

    def test_victim_shrinks_then_regrows(self):
        _, _, result = self._run()
        victim = result.jobs["wave-victim"]
        assert victim.state == COMPLETED
        assert victim.shrinks == 1
        assert victim.regrows == 1
        assert victim.replicas == 4  # back to full size after the heal
        assert victim.lost_steps > 0  # unannounced death rewinds to the ckpt
        # The timeline records the elastic shape changes explicitly.
        builds = [op[1] for op in victim.timeline if op[0] == "build"]
        assert builds == [4, 2, 4]

    def test_bystander_unaffected_and_both_replay_bit_identically(self):
        specs, config, result = self._run()
        bystander = result.jobs["bystander"]
        assert bystander.lost_steps == 0
        assert bystander.shrinks == 0
        assert bystander.goodput == 1.0
        for spec in specs:
            report = result.jobs[spec.name]
            replay = solo_replay(spec, report, config.seed)
            assert _params_equal(report.final_params, replay), spec.name

    def test_shrink_below_min_chips_evicts_and_requeues(self):
        spec = JobSpec(
            name="only", slice_shape=(2, 1), target_steps=10,
            min_chips=2, checkpoint_interval=2, state_bytes=0,
        )
        plan = FaultPlan(
            chip_failures=(ChipFailure(device=(0, 0), at_step=3),),
        )
        config = ClusterConfig(
            mesh_shape=(2, 1), chips_per_host=2, heal_after_s=4.0, seed=1,
        )
        result = run_cluster([spec], config, plan=plan)
        report = result.jobs["only"]
        # One survivor < min_chips: evicted, then readmitted post-heal and
        # finished from the saved checkpoint.
        assert report.evictions == 1
        assert report.state == COMPLETED
        assert report.admissions == 2

    def test_whole_pod_preemption_signal_evicts_with_grace(self):
        spec = JobSpec(
            name="only", slice_shape=(2, 1), target_steps=10,
            checkpoint_interval=3, state_bytes=int(1e9),
        )
        plan = FaultPlan(
            preemptions=(PreemptionSignal(host=0, at_step=4, grace_s=30.0),),
        )
        config = ClusterConfig(
            mesh_shape=(2, 1), chips_per_host=2, heal_after_s=3.0, seed=1,
        )
        result = run_cluster([spec], config, plan=plan)
        report = result.jobs["only"]
        assert report.evictions == 1
        assert report.lost_steps == 0  # grace save fit the 30 s window
        assert report.state == COMPLETED


class TestAdmissionRetryAndRejection:
    def test_impossible_job_rejected_after_max_attempts(self):
        spec = JobSpec(
            name="too-big", slice_shape=(4, 4), target_steps=5, state_bytes=0,
        )
        policy = RetryPolicy(
            timeout_s=0.0, max_attempts=3, backoff_s=2.0, jitter_frac=0.25,
        )
        config = ClusterConfig(
            mesh_shape=(2, 2), admission_policy=policy, seed=3,
        )
        result = run_cluster([spec], config)
        report = result.jobs["too-big"]
        assert report.state == REJECTED
        assert report.admissions == 0
        assert report.admission_retries == policy.max_attempts - 1
        retries = [e for e in result.trace() if e[1] == "admission_retry"]
        assert len(retries) == policy.max_attempts - 1
        # Backoff grows: the retry gaps are non-decreasing.
        ticks = [0] + [e[0] for e in retries]
        gaps = [b - a for a, b in zip(ticks, ticks[1:])]
        assert gaps == sorted(gaps)

    def test_blocked_tenant_eventually_admitted_when_capacity_frees(self):
        specs = [
            JobSpec(name="holder", slice_shape=(2, 2), target_steps=6,
                    priority=1, state_bytes=0),
            JobSpec(name="waiter", slice_shape=(2, 2), target_steps=4,
                    priority=1, arrival_tick=1, state_bytes=0),
        ]
        config = ClusterConfig(mesh_shape=(2, 2), chips_per_host=2, seed=5)
        result = run_cluster(specs, config)
        waiter = result.jobs["waiter"]
        # Equal priority: no preemption, only backoff until the holder ends.
        assert result.jobs["holder"].preemptions == 0
        assert waiter.state == COMPLETED
        assert waiter.admission_retries > 0
        assert waiter.admitted_tick >= 6

    def test_retry_jitter_is_deterministic_per_key(self):
        policy = RetryPolicy(
            timeout_s=0.0, max_attempts=8, backoff_s=2.0, jitter_frac=0.25,
        )
        assert policy.jitter_after(3, key=42) == policy.jitter_after(3, key=42)
        assert policy.jitter_after(3, key=42) != policy.jitter_after(3, key=43)
        assert 0.0 <= policy.jitter_after(3, key=42) < 0.25 * policy.backoff_after(3)


class TestRetryPolicyConsolidation:
    """Satellite: one shared RetryPolicy for link retries and admission."""

    def test_default_delays_equal_historical_constants_exactly(self):
        policy = RetryPolicy()
        for attempt in range(1, 5):
            legacy = 1e-3 + 2e-3 * 2.0 ** (attempt - 1)
            assert policy.delay_after(attempt) == legacy
            assert policy.jitter_after(attempt) == 0.0

    def test_degraded_schedule_bit_identical_to_explicit_legacy_policy(self):
        mesh = TorusMesh(1, 4, wrap_x=False, wrap_y=True)
        ring = y_ring(mesh, x=0)
        flap = LinkFault((0, 0), (0, 1), start=0.0, duration=2e-3)
        plan = FaultPlan(link_faults=(flap,))
        legacy = RetryPolicy(
            timeout_s=1e-3, max_attempts=4, backoff_s=2e-3,
            backoff_factor=2.0, jitter_frac=0.0,
        )
        default = simulate_degraded_reduce_scatter(mesh, ring, 1e6, plan)
        explicit = simulate_degraded_reduce_scatter(
            mesh, ring, 1e6, plan, policy=legacy
        )
        assert default.seconds == explicit.seconds
        assert default.retries == explicit.retries

    def test_jitter_changes_delay_but_not_backoff_base(self):
        jittered = RetryPolicy(jitter_frac=0.5)
        plain = RetryPolicy()
        assert jittered.backoff_after(3) == plain.backoff_after(3)
        assert jittered.delay_after(3, key=1) >= plain.delay_after(3)


class TestTenantLabelCardinality:
    """Satellite: 100 tenants must not collapse into the overflow child."""

    def test_100_tenants_keep_distinct_series(self):
        specs = [
            JobSpec(
                name=f"tenant-{i:03d}", slice_shape=(1, 1), target_steps=2,
                arrival_tick=0, state_bytes=0,
            )
            for i in range(100)
        ]
        config = ClusterConfig(mesh_shape=(10, 10), seed=11)
        result = run_cluster(specs, config)
        assert result.completed == 100
        for i in range(100):
            name = f"tenant-{i:03d}"
            assert telemetry.metrics.value("cluster_steps", tenant=name) == 2.0
        # Nothing hit the cardinality guard at the default max_children.
        assert telemetry.metrics.total(OVERFLOW_COUNTER) == 0.0
        family = telemetry.metrics._families["cluster_steps"]
        assert OVERFLOW_KEY not in family.children


class TestGoodputSchema:
    """Satellite: chaos and cluster runs share one accounting schema."""

    def test_job_report_extends_goodput_accounting(self):
        assert issubclass(ChaosReport, GoodputAccounting)
        assert issubclass(JobReport, GoodputAccounting)

    def test_accounting_dict_keys_match_across_consumers(self):
        chaos_keys = set(ChaosReport().accounting_dict())
        job_keys = set(JobReport().accounting_dict())
        assert chaos_keys == job_keys
        for key in ("goodput", "mttr_seconds", "mttd_seconds",
                    "lost_steps", "restarts", "preemptions"):
            assert key in chaos_keys

    def test_run_chaos_accounting_mode_returns_structured_report(self):
        plan = FaultPlan(
            chip_failures=(ChipFailure(device=(0, 0), at_step=3),),
        )
        chaos_config = ChaosConfig(
            mesh_shape=(2, 2), target_steps=10, checkpoint_interval=5,
        )
        report = run_chaos(plan, chaos_config, state_bytes=int(1e9))
        assert isinstance(report, GoodputAccounting)
        d = report.accounting_dict()
        assert d["restarts"] == report.restarts
        assert 0.0 < d["goodput"] <= 1.0

    def test_cluster_result_aggregates_fairness_and_slo(self):
        specs = [
            JobSpec(name="a", slice_shape=(1, 1), target_steps=4,
                    state_bytes=0, slo_goodput=0.5),
            JobSpec(name="b", slice_shape=(1, 1), target_steps=4,
                    state_bytes=0, slo_goodput=0.5),
        ]
        config = ClusterConfig(mesh_shape=(2, 1), seed=0)
        result = run_cluster(specs, config)
        assert result.fairness == 1.0  # identical goodput -> Jain == 1
        assert result.slo_attainment == 1.0
        assert 0.0 < result.utilization <= 1.0


class TestSchedulerValidation:
    def test_duplicate_job_names_rejected(self):
        specs = [
            JobSpec(name="same", slice_shape=(1, 1), target_steps=1),
            JobSpec(name="same", slice_shape=(1, 1), target_steps=1),
        ]
        with pytest.raises(ValueError):
            ClusterScheduler(specs, ClusterConfig(mesh_shape=(2, 2)))

    def test_real_numerics_spec_requires_batch_fn(self):
        with pytest.raises(ValueError):
            JobSpec(
                name="a", slice_shape=(1, 1), target_steps=1,
                trainer_config=_trainer_config(),
            )

    def test_pending_forever_job_never_admitted_has_unit_goodput_excluded(self):
        # A job whose arrival is past the horizon stays pending; it must
        # not dilute fairness (its goodput is undefined, not zero).
        specs = [
            JobSpec(name="ran", slice_shape=(1, 1), target_steps=2,
                    state_bytes=0),
            JobSpec(name="late", slice_shape=(1, 1), target_steps=2,
                    arrival_tick=500, state_bytes=0),
        ]
        config = ClusterConfig(mesh_shape=(1, 1), max_ticks=10, seed=0)
        result = run_cluster(specs, config)
        assert result.jobs["late"].state == PENDING
        assert result.fairness == 1.0


class TestPerTenantCheckpointPolicy:
    """Satellite of PR 9: `JobSpec.checkpoint_policy` opt-in."""

    PLAN = FaultPlan(chip_failures=(ChipFailure((0, 0), at_step=21),))

    def _run_one(self, policy, interval=50):
        from repro.cluster.scheduler import run_cluster as _run

        spec = JobSpec(
            name="tenant", slice_shape=(2, 2), target_steps=40,
            checkpoint_interval=interval, state_bytes=int(1e9),
            checkpoint_policy=policy,
        )
        config = ClusterConfig(
            mesh_shape=(2, 2), chips_per_host=2, max_ticks=200, seed=5,
        )
        return _run([spec], config, plan=self.PLAN).jobs["tenant"]

    def test_risk_adaptive_tenant_checkpoints_more_and_loses_less(self):
        from repro.controlplane.checkpointing import RiskAdaptive

        # Same fault plan, same pod: the fixed-interval tenant rides 50
        # steps between snapshots, the high-hazard tenant follows the
        # Young/Daly interval (sqrt(2*1.0/0.5) = 2 s, i.e. ~every 2
        # steps) — so the chip death at step 21 rewinds it far less.
        legacy = self._run_one(None)
        adaptive = self._run_one(
            RiskAdaptive(hazard_per_second=0.5, checkpoint_seconds=1.0)
        )
        assert legacy.state == COMPLETED and adaptive.state == COMPLETED
        assert adaptive.checkpoints_taken > legacy.checkpoints_taken
        assert adaptive.lost_steps < legacy.lost_steps
        assert legacy.lost_steps >= 20  # rewound to the initial snapshot

    def test_none_policy_is_bit_identical_to_legacy_rule(self):
        # The opt-in must not perturb the default path: a spec without a
        # policy replays the exact event trace and accounting of the
        # pre-policy scheduler (interval rule on step count).
        from repro.controlplane.checkpointing import StepInterval

        legacy = self._run_one(None, interval=4)
        stepwise = self._run_one(StepInterval(4), interval=50)
        assert stepwise.checkpoints_taken == legacy.checkpoints_taken
        assert stepwise.lost_steps == legacy.lost_steps
        assert stepwise.timeline == legacy.timeline

"""ParallelismConfig tests."""

import pytest

from repro.core.strategy import ParallelismConfig


class TestConfig:
    def test_pure_data_parallel(self):
        c = ParallelismConfig(num_chips=4096, global_batch=65536)
        assert c.num_cores == 8192
        assert c.num_replicas == 8192
        assert c.batch_per_core == 8.0
        assert c.mp_chips == 1

    def test_model_parallel_replicas(self):
        c = ParallelismConfig(num_chips=4096, global_batch=2048, mp_cores=4)
        assert c.num_replicas == 2048
        assert c.batch_per_replica == 1.0
        assert c.mp_chips == 2

    def test_mp_two_cores_one_chip(self):
        c = ParallelismConfig(num_chips=16, global_batch=16, mp_cores=2)
        assert c.mp_chips == 1

    def test_invalid_divisibility(self):
        with pytest.raises(ValueError):
            ParallelismConfig(num_chips=3, global_batch=8, mp_cores=4)

    def test_oversized_mp_reports_capacity_not_divisibility(self):
        # mp_cores=16 on a 4-core slice trips both checks; the capacity
        # error must win — "not divisible" would misdirect the fix.
        with pytest.raises(ValueError, match="exceeds total cores"):
            ParallelismConfig(num_chips=2, global_batch=64, mp_cores=16)

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            ParallelismConfig(num_chips=0, global_batch=8)
        with pytest.raises(ValueError):
            ParallelismConfig(num_chips=4, global_batch=0)
        with pytest.raises(ValueError):
            ParallelismConfig(num_chips=4, global_batch=8, mp_cores=0)

    def test_with_modifier(self):
        c = ParallelismConfig(num_chips=16, global_batch=64)
        c2 = c.with_(use_weight_update_sharding=False)
        assert c.use_weight_update_sharding
        assert not c2.use_weight_update_sharding
        assert c2.num_chips == 16

"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

from repro.hardware.topology import TorusMesh, multipod, single_pod

# CI runs with HYPOTHESIS_PROFILE=ci: derandomized so a red build replays
# the exact same examples, no deadline so shared runners don't flake.
settings.register_profile("ci", derandomize=True, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def small_torus() -> TorusMesh:
    """A 4x4 full torus (both wraps)."""
    return TorusMesh(4, 4, wrap_x=True, wrap_y=True)


@pytest.fixture
def small_mesh() -> TorusMesh:
    """A 4x4 open mesh (no wraps)."""
    return TorusMesh(4, 4)


@pytest.fixture
def the_multipod() -> TorusMesh:
    """The paper's 4096-chip 128x32 multipod."""
    return multipod(4)


@pytest.fixture
def pod() -> TorusMesh:
    return single_pod()

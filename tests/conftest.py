"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.topology import TorusMesh, multipod, single_pod, slice_for_chips


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def small_torus() -> TorusMesh:
    """A 4x4 full torus (both wraps)."""
    return TorusMesh(4, 4, wrap_x=True, wrap_y=True)


@pytest.fixture
def small_mesh() -> TorusMesh:
    """A 4x4 open mesh (no wraps)."""
    return TorusMesh(4, 4)


@pytest.fixture
def the_multipod() -> TorusMesh:
    """The paper's 4096-chip 128x32 multipod."""
    return multipod(4)


@pytest.fixture
def pod() -> TorusMesh:
    return single_pod()

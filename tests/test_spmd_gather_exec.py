"""Functional gather-as-matmul and distributed top-k tests (§4.5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spmd.gather_exec import (
    distributed_topk,
    gather_as_onehot_matmul,
    onehot_matrix,
    sharded_onehot_gather,
    topk_direct,
)


class TestOnehotGather:
    def test_matches_direct_indexing(self, rng):
        table = rng.standard_normal((50, 7))
        ids = rng.integers(0, 50, 20)
        assert np.allclose(gather_as_onehot_matmul(table, ids), table[ids])

    def test_repeated_ids(self, rng):
        table = rng.standard_normal((10, 3))
        ids = np.array([2, 2, 2])
        out = gather_as_onehot_matmul(table, ids)
        assert np.allclose(out, np.tile(table[2], (3, 1)))

    def test_onehot_matrix_rows(self):
        m = onehot_matrix(np.array([1, 0]), 3)
        assert np.array_equal(m, [[0, 1, 0], [1, 0, 0]])

    def test_out_of_range(self, rng):
        with pytest.raises(IndexError):
            onehot_matrix(np.array([5]), 3)

    def test_bad_shapes(self, rng):
        with pytest.raises(ValueError):
            gather_as_onehot_matmul(rng.standard_normal(10), np.array([0]))
        with pytest.raises(ValueError):
            onehot_matrix(np.zeros((2, 2), int), 5)


class TestShardedOnehotGather:
    @pytest.mark.parametrize("m", [1, 2, 4])
    def test_matches_direct(self, m, rng):
        table = rng.standard_normal((41, 5))  # uneven split
        shards = np.array_split(table, m)
        ids = rng.integers(0, 41, 16)
        out = sharded_onehot_gather(list(shards), ids)
        assert np.allclose(out, table[ids], rtol=1e-12)

    def test_all_ids_on_one_shard(self, rng):
        table = rng.standard_normal((20, 4))
        shards = np.array_split(table, 4)
        ids = np.array([0, 1, 2])  # all on shard 0
        assert np.allclose(sharded_onehot_gather(list(shards), ids), table[ids])

    def test_range_check(self, rng):
        shards = [rng.standard_normal((5, 2)), rng.standard_normal((5, 2))]
        with pytest.raises(IndexError):
            sharded_onehot_gather(shards, np.array([10]))

    def test_empty_shards_rejected(self):
        with pytest.raises(ValueError):
            sharded_onehot_gather([], np.array([0]))


class TestTopk:
    def test_direct_known(self):
        v, i = topk_direct(np.array([3.0, 1.0, 4.0, 1.0, 5.0]), 2)
        assert np.array_equal(v, [5.0, 4.0])
        assert np.array_equal(i, [4, 2])

    def test_direct_ties_prefer_lower_index(self):
        v, i = topk_direct(np.array([7.0, 7.0, 1.0]), 2)
        assert np.array_equal(i, [0, 1])

    def test_direct_k_validation(self):
        with pytest.raises(ValueError):
            topk_direct(np.array([1.0]), 2)

    @pytest.mark.parametrize("m", [1, 2, 3, 5])
    def test_distributed_matches_direct(self, m, rng):
        values = rng.standard_normal(47)
        shards = np.array_split(values, m)
        for k in (1, 5, 20):
            dv, di = distributed_topk(list(shards), k)
            ev, ei = topk_direct(values, k)
            assert np.array_equal(dv, ev)
            assert np.array_equal(di, ei)

    def test_distributed_with_ties(self):
        values = np.array([2.0, 9.0, 9.0, 2.0, 9.0, 0.0])
        dv, di = distributed_topk([values[:3], values[3:]], 3)
        ev, ei = topk_direct(values, 3)
        assert np.array_equal(dv, ev)
        assert np.array_equal(di, ei)

    def test_k_larger_than_some_shards(self, rng):
        shards = [rng.standard_normal(2), rng.standard_normal(30)]
        dv, di = distributed_topk(shards, 10)
        ev, ei = topk_direct(np.concatenate(shards), 10)
        assert np.array_equal(di, ei)

    @given(
        n=st.integers(4, 80),
        m=st.integers(1, 6),
        k=st.integers(1, 10),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_distributed_equals_direct(self, n, m, k, seed):
        if k > n or m > n:
            return
        rng = np.random.default_rng(seed)
        values = rng.standard_normal(n)
        shards = np.array_split(values, m)
        dv, di = distributed_topk(list(shards), k)
        ev, ei = topk_direct(values, k)
        assert np.array_equal(dv, ev)
        assert np.array_equal(di, ei)

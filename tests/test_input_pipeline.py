"""Host input-pipeline simulation tests (§3.5)."""

import numpy as np
import pytest

from repro.hardware.chip import HostSpec
from repro.input_pipeline.host import simulate_host_pipeline
from repro.input_pipeline.imbalance import multipod_input_imbalance
from repro.input_pipeline.stages import (
    JpegSizeModel,
    PipelineStage,
    crop_flip_normalize_stage,
    jpeg_decode_stage,
    uncompressed_read_stage,
)


class TestStages:
    def test_jpeg_sizes_heavy_tailed(self, rng):
        model = JpegSizeModel()
        sizes = model.sample(rng, 20_000)
        assert np.median(sizes) == pytest.approx(110e3, rel=0.1)
        assert np.max(sizes) <= model.max_bytes
        assert np.percentile(sizes, 99) > 3 * np.median(sizes)

    def test_decode_cost_proportional_to_size(self, rng):
        host = HostSpec(jpeg_decode_rate=100e6)
        stage = jpeg_decode_stage(host, JpegSizeModel(median_bytes=100e3, sigma=0.01))
        cost = stage.sample_cost(rng)
        assert cost == pytest.approx(100e3 / 100e6, rel=0.1)

    def test_uncompressed_constant(self, rng):
        stage = uncompressed_read_stage()
        costs = {stage.sample_cost(rng) for _ in range(5)}
        assert len(costs) == 1

    def test_negative_cost_rejected(self, rng):
        stage = PipelineStage("bad", lambda rng: -1.0)
        with pytest.raises(ValueError):
            stage.sample_cost(rng)


class TestHostPipeline:
    def test_fast_pipeline_no_stalls(self):
        cheap = PipelineStage("cheap", lambda rng: 1e-6)
        res = simulate_host_pipeline(
            [cheap], batch_per_host=8, device_step_seconds=0.01,
            steps=10, workers=8, prefetch_batches=2.0,
        )
        assert res.slowdown == pytest.approx(1.0, rel=0.05)
        assert res.stall_fraction < 0.05

    def test_slow_pipeline_stalls_device(self):
        slow = PipelineStage("slow", lambda rng: 0.02)
        res = simulate_host_pipeline(
            [slow], batch_per_host=8, device_step_seconds=0.01,
            steps=10, workers=2, prefetch_batches=1.0,
        )
        assert res.slowdown > 2.0
        assert res.stall_fraction > 0.3

    def test_prefetch_hides_variance(self, rng):
        def spiky(rng):
            return 0.05 if rng.random() < 0.02 else 0.0005

        stage = PipelineStage("spiky", spiky)
        kwargs = dict(batch_per_host=16, device_step_seconds=0.004,
                      steps=60, workers=8, seed=3)
        shallow = simulate_host_pipeline([stage], prefetch_batches=1.0, **kwargs)
        deep = simulate_host_pipeline([stage], prefetch_batches=16.0, **kwargs)
        assert deep.total_seconds <= shallow.total_seconds

    def test_determinism(self):
        stage = crop_flip_normalize_stage()
        a = simulate_host_pipeline([stage], batch_per_host=4,
                                   device_step_seconds=0.01, steps=5, seed=1)
        b = simulate_host_pipeline([stage], batch_per_host=4,
                                   device_step_seconds=0.01, steps=5, seed=1)
        assert a.total_seconds == b.total_seconds

    def test_invalid_args(self):
        stage = crop_flip_normalize_stage()
        with pytest.raises(ValueError):
            simulate_host_pipeline([stage], batch_per_host=0,
                                   device_step_seconds=0.01, steps=5)
        with pytest.raises(ValueError):
            simulate_host_pipeline([stage], batch_per_host=4,
                                   device_step_seconds=0.0, steps=5)


class TestImbalance:
    def test_uncompressed_removes_imbalance(self):
        """The Section 3.5 claim, at reduced scale for test speed."""
        host = HostSpec(jpeg_decode_rate=50e6)
        compressed, uncompressed = multipod_input_imbalance(
            num_hosts=6, batch_per_host=64, device_step_seconds=0.0105,
            steps=15, host=host,
        )
        assert compressed.max_slowdown > uncompressed.max_slowdown
        assert uncompressed.max_slowdown < 1.05

    def test_report_stats(self):
        compressed, _ = multipod_input_imbalance(
            num_hosts=3, batch_per_host=16, steps=5,
        )
        assert compressed.num_hosts == 3
        assert compressed.max_slowdown >= compressed.mean_slowdown >= 1.0

    def test_invalid_hosts(self):
        with pytest.raises(ValueError):
            multipod_input_imbalance(num_hosts=0)

"""VirtualMesh buffer management and collective dispatch."""

import numpy as np
import pytest

from repro.runtime.mesh import VirtualMesh


class TestBuffers:
    def test_put_get(self):
        m = VirtualMesh(2, 2)
        m.put("w", (1, 1), np.arange(4.0))
        assert np.array_equal(m.get("w", (1, 1)), np.arange(4.0))

    def test_put_replicated(self):
        m = VirtualMesh(2, 3)
        m.put_replicated("w", np.ones(5))
        for d in m.devices():
            assert np.array_equal(m.get("w", d), np.ones(5))

    def test_replication_copies(self):
        m = VirtualMesh(2, 1)
        src = np.zeros(3)
        m.put_replicated("w", src)
        m.get("w", (0, 0))[0] = 99.0
        assert m.get("w", (1, 0))[0] == 0.0

    def test_missing_buffer(self):
        m = VirtualMesh(1, 1)
        with pytest.raises(KeyError):
            m.get("nope", (0, 0))

    def test_bad_device(self):
        m = VirtualMesh(2, 2)
        with pytest.raises(ValueError):
            m.put("w", (2, 0), np.zeros(1))

    def test_devices_order(self):
        m = VirtualMesh(2, 2)
        assert list(m.devices()) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_apply(self):
        m = VirtualMesh(2, 1)
        m.put_replicated("w", np.ones(3))
        m.apply("w", lambda a: 2 * a)
        assert np.array_equal(m.get("w", (1, 0)), 2 * np.ones(3))

    def test_apply_inplace(self):
        m = VirtualMesh(2, 1)
        m.put_replicated("w", np.ones(3))
        before = [m.get("w", d) for d in m.devices()]

        def scale(buf):
            buf *= 3.0

        m.apply_inplace("w", scale)
        for d, buf in zip(m.devices(), before):
            assert m.get("w", d) is buf  # no copies, no dict rewrites
            assert np.array_equal(buf, 3.0 * np.ones(3))

    def test_apply_inplace_missing_buffer(self):
        m = VirtualMesh(1, 1)
        with pytest.raises(KeyError):
            m.apply_inplace("nope", lambda b: None)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            VirtualMesh(0, 1)


class TestMeshCollectives:
    def _fill(self, m, name, size=12):
        for i, d in enumerate(m.devices()):
            m.put(name, d, np.full(size, float(i + 1)))

    def test_flat_all_reduce(self):
        m = VirtualMesh(4, 1)
        self._fill(m, "g")
        m.all_reduce("g", "f64")
        expected = np.full(12, 1.0 + 2 + 3 + 4)
        for d in m.devices():
            assert np.allclose(m.get("g", d), expected)

    def test_hierarchical_all_reduce(self):
        m = VirtualMesh(2, 3)
        self._fill(m, "g")
        m.all_reduce("g", "f64")
        expected = np.full(12, float(sum(range(1, 7))))
        for d in m.devices():
            assert np.allclose(m.get("g", d), expected)

    def test_hierarchical_forced_off(self):
        m = VirtualMesh(2, 2)
        self._fill(m, "g")
        m.all_reduce("g", "f64", hierarchical=False)
        expected = np.full(12, 10.0)
        assert np.allclose(m.get("g", (0, 0)), expected)

    def test_shard_transform_needs_hierarchical(self):
        m = VirtualMesh(4, 1)
        self._fill(m, "g")
        with pytest.raises(ValueError):
            m.all_reduce("g", hierarchical=False, shard_transform=lambda s: s)

    def test_fused_shard_transform(self):
        m = VirtualMesh(2, 2)
        self._fill(m, "g")
        m.all_reduce("g", "f64", shard_transform=lambda s: 0.5 * s)
        expected = np.full(12, 0.5 * 10.0)
        assert np.allclose(m.get("g", (1, 1)), expected)

    def test_fused_multi_name_all_reduce(self):
        """A sequence of names travels in ONE bucketed collective."""
        m = VirtualMesh(4, 1)
        self._fill(m, "g0", size=7)
        self._fill(m, "g1", size=5)
        m.all_reduce(["g0", "g1"], "f64")
        for d in m.devices():
            assert np.allclose(m.get("g0", d), np.full(7, 10.0))
            assert np.allclose(m.get("g1", d), np.full(5, 10.0))

    def test_fused_multi_name_matches_separate(self):
        fused = VirtualMesh(2, 2)
        separate = VirtualMesh(2, 2)
        rng = np.random.default_rng(5)
        for i, d in enumerate(fused.devices()):
            a = rng.standard_normal(9)
            b = rng.standard_normal((3, 4))
            fused.put("a", d, a.copy())
            fused.put("b", d, b.copy())
            separate.put("a", d, a.copy())
            separate.put("b", d, b.copy())
        fused.all_reduce(["a", "b"], "f64")
        separate.all_reduce("a", "f64")
        separate.all_reduce("b", "f64")
        for d in fused.devices():
            assert np.allclose(fused.get("a", d), separate.get("a", d))
            assert np.allclose(fused.get("b", d), separate.get("b", d))

    def test_bucket_layout_cached(self):
        m = VirtualMesh(2, 1)
        self._fill(m, "g")
        m.all_reduce("g", "f64")
        first = m._buckets
        assert len(first) == 1
        m.all_reduce("g", "f64")
        assert m._buckets is first and len(first) == 1

"""GradientBucket: fused flatten/unflatten, segment maps, fused collectives."""

import numpy as np
import pytest

from repro.runtime.bucket import BucketSegment, GradientBucket
from repro.runtime.collectives import ring_all_reduce


def _tree(rng, dtype=np.float64):
    return {
        "w0": rng.standard_normal((6, 4)).astype(dtype),
        "b0": rng.standard_normal(4).astype(dtype),
        "w1": rng.standard_normal((4, 3)).astype(dtype),
        "b1": rng.standard_normal(3).astype(dtype),
    }


class TestLayout:
    def test_offsets_are_contiguous(self, rng):
        tree = _tree(rng)
        bucket = GradientBucket(tree)
        offset = 0
        for name in tree:
            assert bucket.slice_of(name) == slice(offset, offset + tree[name].size)
            offset += tree[name].size
        assert bucket.size == offset

    def test_flatten_unflatten_roundtrip(self, rng):
        tree = _tree(rng)
        bucket = GradientBucket(tree)
        flat = bucket.flatten(tree)
        back = bucket.unflatten(flat)
        for name in tree:
            assert np.array_equal(back[name], tree[name])
            assert back[name].shape == tree[name].shape

    def test_unflatten_is_zero_copy(self, rng):
        tree = _tree(rng)
        bucket = GradientBucket(tree)
        flat = bucket.flatten(tree)
        back = bucket.unflatten(flat)
        assert back["w0"].base is flat
        flat[0] = 123.0
        assert back["w0"].reshape(-1)[0] == 123.0

    def test_flatten_into_out(self, rng):
        tree = _tree(rng)
        bucket = GradientBucket(tree)
        out = np.empty(bucket.size)
        assert bucket.flatten(tree, out=out) is out
        with pytest.raises(ValueError):
            bucket.flatten(tree, out=np.empty(bucket.size + 1))

    def test_empty_template_rejected(self):
        with pytest.raises(ValueError):
            GradientBucket({})

    def test_short_buffer_rejected(self, rng):
        bucket = GradientBucket(_tree(rng))
        with pytest.raises(ValueError):
            bucket.unflatten(np.zeros(bucket.size - 1))


class TestSegments:
    def test_segments_cover_window(self, rng):
        bucket = GradientBucket(_tree(rng))
        segs = bucket.segments(10, 30)
        assert all(isinstance(s, BucketSegment) for s in segs)
        covered = sum(s.size for s in segs)
        assert covered == 20
        # bucket_slice positions are disjoint, ordered, and inside the window
        pos = 10
        for s in segs:
            assert s.bucket_slice.start == pos
            assert s.local_slice.start == pos - 10
            pos = s.bucket_slice.stop
        assert pos == 30

    def test_window_past_end_yields_nothing(self, rng):
        bucket = GradientBucket(_tree(rng))
        assert bucket.segments(bucket.size, bucket.size + 8) == ()

    def test_segments_cached(self, rng):
        bucket = GradientBucket(_tree(rng))
        assert bucket.segments(0, 5) is bucket.segments(0, 5)

    def test_shard_segments_partition(self, rng):
        bucket = GradientBucket(_tree(rng))
        for n in (1, 2, 3, 4, 7):
            windows = bucket.shard_segments(n)
            assert len(windows) == n
            total = sum(s.size for segs in windows for s in segs)
            assert total == bucket.size
            # tensor slices reassemble every parameter exactly
            seen = {name: np.zeros(int(np.prod(shape)), dtype=int)
                    for name, shape in bucket.shapes.items()}
            for segs in windows:
                for s in segs:
                    seen[s.name][s.tensor_slice] += 1
            for counts in seen.values():
                assert np.all(counts == 1)


class TestFusedAllReduce:
    def test_matches_per_parameter_collective(self, rng):
        """Flatten -> ONE all-reduce -> unflatten == per-parameter all-reduce."""
        n = 4
        trees = [_tree(rng) for _ in range(n)]
        bucket = GradientBucket(trees[0])
        fused = bucket.all_reduce(trees, "f64")
        assert len(fused) == n
        for name in trees[0]:
            separate = ring_all_reduce([t[name] for t in trees], "f64")
            for d in range(n):
                assert fused[d][name].shape == trees[0][name].shape
                assert np.allclose(fused[d][name], separate[d], rtol=1e-12)

    def test_hierarchical_grid(self, rng):
        trees = [_tree(rng) for _ in range(6)]
        bucket = GradientBucket(trees[0])
        fused = bucket.all_reduce(trees, "f64", grid_shape=(2, 3))
        truth = {
            name: np.sum([t[name] for t in trees], axis=0) for name in trees[0]
        }
        for d in range(6):
            for name in truth:
                assert np.allclose(fused[d][name], truth[name], rtol=1e-10)

    def test_grid_shape_mismatch(self, rng):
        trees = [_tree(rng) for _ in range(4)]
        with pytest.raises(ValueError):
            GradientBucket(trees[0]).all_reduce(trees, grid_shape=(3, 2))

    def test_shard_transform_requires_hierarchical(self, rng):
        trees = [_tree(rng) for _ in range(4)]
        with pytest.raises(ValueError):
            GradientBucket(trees[0]).all_reduce(
                trees, shard_transform=lambda s: s
            )

    def test_scalar_entry(self, rng):
        trees = [
            {"s": np.float64(i + 1), "v": np.full(3, float(i + 1))}
            for i in range(3)
        ]
        bucket = GradientBucket(trees[0])
        fused = bucket.all_reduce(trees, "f64")
        assert fused[0]["s"].shape == ()
        assert float(fused[0]["s"]) == pytest.approx(6.0)
        assert np.allclose(fused[0]["v"], np.full(3, 6.0))

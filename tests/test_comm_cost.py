"""Alpha-beta cost formula tests."""

import pytest

from repro.comm.cost import (
    all_gather_time,
    broadcast_time,
    reduce_scatter_time,
    ring_all_reduce_time,
    ring_cost_for,
)
from repro.hardware.rings import model_peer_ring, x_line, y_ring
from repro.hardware.topology import multipod, slice_for_chips

BW = 70e9
ALPHA = 1e-6


class TestReduceScatter:
    def test_single_member_free(self):
        assert reduce_scatter_time(1, 1e6, BW, ALPHA) == 0.0

    def test_zero_payload_free(self):
        assert reduce_scatter_time(8, 0.0, BW, ALPHA) == 0.0

    def test_closed_ring_formula(self):
        t = reduce_scatter_time(32, 1e8, BW, ALPHA, closed=True)
        expected = (31 / 32) * 1e8 / (2 * BW) + 31 * ALPHA
        assert t == pytest.approx(expected)

    def test_open_line_twice_the_bandwidth_term(self):
        closed = reduce_scatter_time(32, 1e8, BW, 0.0, closed=True)
        open_ = reduce_scatter_time(32, 1e8, BW, 0.0, closed=False)
        assert open_ == pytest.approx(2 * closed)

    def test_bandwidth_term_scale_free(self):
        """The key scaling fact: ring time converges as n grows."""
        t64 = reduce_scatter_time(64, 1e8, BW, 0.0)
        t4096 = reduce_scatter_time(4096, 1e8, BW, 0.0)
        assert t4096 < 1.02 * t64

    def test_latency_term_grows_linearly(self):
        t8 = reduce_scatter_time(8, 0.0, BW, ALPHA) if False else None
        a = reduce_scatter_time(8, 1.0, BW, ALPHA)
        b = reduce_scatter_time(16, 1.0, BW, ALPHA)
        assert b - a == pytest.approx((15 - 7) * ALPHA, rel=1e-3)

    def test_hop_links_multiply_latency(self):
        single = reduce_scatter_time(8, 1e6, BW, ALPHA, hop_links=1)
        quad = reduce_scatter_time(8, 1e6, BW, ALPHA, hop_links=4)
        assert quad - single == pytest.approx(7 * 3 * ALPHA)

    def test_bandwidth_fraction(self):
        full = reduce_scatter_time(8, 1e8, BW, 0.0)
        quarter = reduce_scatter_time(8, 1e8, BW, 0.0, bandwidth_fraction=0.25)
        assert quarter == pytest.approx(4 * full)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            reduce_scatter_time(0, 1e6, BW, ALPHA)
        with pytest.raises(ValueError):
            reduce_scatter_time(8, -1, BW, ALPHA)
        with pytest.raises(ValueError):
            reduce_scatter_time(8, 1e6, 0, ALPHA)
        with pytest.raises(ValueError):
            reduce_scatter_time(8, 1e6, BW, ALPHA, bandwidth_fraction=0)


class TestAllGatherAndAllReduce:
    def test_all_gather_equals_reduce_scatter(self):
        assert all_gather_time(16, 1e7, BW, ALPHA) == pytest.approx(
            reduce_scatter_time(16, 1e7, BW, ALPHA)
        )

    def test_all_reduce_is_two_phases(self):
        assert ring_all_reduce_time(16, 1e7, BW, ALPHA) == pytest.approx(
            2 * reduce_scatter_time(16, 1e7, BW, ALPHA)
        )


class TestBroadcast:
    def test_single_member(self):
        assert broadcast_time(1, 1e6, BW, ALPHA) == 0.0

    def test_ring_halves_payload_time(self):
        ring = broadcast_time(16, 1e8, BW, 0.0, closed=True)
        line = broadcast_time(16, 1e8, BW, 0.0, closed=False)
        assert line == pytest.approx(2 * ring)


class TestRingCostFor:
    def test_y_ring_params(self):
        mesh = slice_for_chips(512)  # 16x32, wrap_y
        c = ring_cost_for(mesh, y_ring(mesh, 0))
        assert c.num_members == 32
        assert c.closed
        assert c.latency == mesh.chip.link_latency

    def test_multipod_x_line_sees_cross_pod_latency(self):
        mesh = multipod(4)
        c = ring_cost_for(mesh, x_line(mesh, 0))
        assert not c.closed
        assert c.latency == mesh.chip.cross_pod_link_latency

    def test_peer_ring_hops(self):
        mesh = slice_for_chips(1024)
        c = ring_cost_for(mesh, model_peer_ring(mesh, 0, 4, 0))
        assert c.hop_links == 4
        assert c.num_members == 8

"""Weight-update sharding equivalence tests (Section 3.2).

WUS must be a pure systems optimization: training with sharded optimizer
state and reduce-scatter / all-gather must match replicated-update data
parallelism (and single-device training) at machine precision — including
for LARS and LAMB whose trust ratios need cross-shard norm reductions.
"""

import numpy as np
import pytest

from repro.core.data_parallel import DataParallelTrainer, SingleDeviceTrainer
from repro.core.weight_update_sharding import (
    WeightUpdateShardedTrainer,
    shard_states,
    sharded_update,
)
from repro.models.mlp import MLP, synthetic_classification
from repro.optim import Adam, LAMB, LARS, SGDMomentum

OPTIMIZERS = [
    ("sgd", lambda: SGDMomentum(0.05)),
    ("lars", lambda: LARS(0.5)),
    ("lamb", lambda: LAMB(0.01)),
    ("adam", lambda: Adam(0.01)),
]


def _data(seed=0):
    rng = np.random.default_rng(seed)
    return synthetic_classification(rng, 64, 12, 4)


def _run(trainer, x, y, steps=4):
    trainer.init(np.random.default_rng(7))
    losses = [trainer.step(x, y) for _ in range(steps)]
    return trainer, losses


def _max_param_diff(p1, p2):
    return max(
        float(np.max(np.abs(np.asarray(p1[k]) - np.asarray(p2[k])))) for k in p1
    )


class TestShardStates:
    def test_shapes_and_roundtrip(self, rng):
        opt = LAMB(0.01)
        params = {"w": rng.standard_normal((5, 3)), "b": rng.standard_normal(7)}
        state = opt.init_state(params)
        sharded = shard_states(state, 4)
        assert len(sharded) == 4
        # every slot chunk has equal size (padded)
        for d in range(4):
            assert sharded[d]["w"]["m"].size == 4  # ceil(15/4)=4
            assert sharded[d]["b"]["v"].size == 2  # ceil(7/4)=2

    def test_invalid_devices(self):
        with pytest.raises(ValueError):
            shard_states({}, 0)


class TestShardedUpdateEquivalence:
    @pytest.mark.parametrize("name,make_opt", OPTIMIZERS)
    def test_matches_replicated_update(self, name, make_opt, rng):
        """One sharded step == one replicated step, same grads."""
        n = 4
        opt = make_opt()
        model = MLP([10, 8, 3])
        params = model.init_params(rng)
        grads = [
            {k: rng.standard_normal(v.shape) / n for k, v in params.items()}
            for _ in range(n)
        ]
        summed = {
            k: np.sum([g[k] for g in grads], axis=0) for k in params
        }
        state = opt.init_state(params)
        expected, _ = opt.update(dict(params), summed, state, 0)
        sharded = shard_states(opt.init_state(params), n)
        got, new_sharded = sharded_update(dict(params), grads, opt, sharded, 0)
        assert _max_param_diff(expected, got) < 1e-10
        assert len(new_sharded) == n

    @pytest.mark.parametrize("name,make_opt", OPTIMIZERS)
    def test_multi_step_training_equivalence(self, name, make_opt):
        model = MLP([12, 16, 8, 4])
        x, y = _data()
        ref, ref_losses = _run(SingleDeviceTrainer(model, make_opt()), x, y)
        wus, wus_losses = _run(
            WeightUpdateShardedTrainer(model, make_opt(), num_replicas=4), x, y
        )
        assert _max_param_diff(ref.params, wus.params) < 1e-10
        assert wus_losses == pytest.approx(ref_losses, rel=1e-10)

    def test_wus_matches_plain_dp(self):
        model = MLP([12, 16, 4])
        x, y = _data()
        dp, _ = _run(DataParallelTrainer(model, LAMB(0.01), dp_x=4), x, y)
        wus, _ = _run(WeightUpdateShardedTrainer(model, LAMB(0.01), num_replicas=4), x, y)
        assert _max_param_diff(dp.params, wus.params) < 1e-10

    @pytest.mark.parametrize("replicas", [2, 3, 5, 8])
    def test_replica_count_invariance(self, replicas):
        """WUS result is independent of how many shards the update uses."""
        model = MLP([12, 16, 4])
        rng = np.random.default_rng(0)
        x, y = synthetic_classification(rng, 120, 12, 4)
        ref, _ = _run(SingleDeviceTrainer(model, LAMB(0.01)), x, y)
        wus, _ = _run(
            WeightUpdateShardedTrainer(model, LAMB(0.01), num_replicas=replicas),
            x, y,
        )
        assert _max_param_diff(ref.params, wus.params) < 1e-10

    def test_state_stays_sharded(self):
        model = MLP([12, 16, 4])
        x, y = _data()
        wus = WeightUpdateShardedTrainer(model, LAMB(0.01), num_replicas=4)
        wus.init(np.random.default_rng(7))
        assert wus.state is None  # replicated slots are gone
        wus.step(x, y)
        assert len(wus.sharded_state) == 4
        # Fused layout: shards are windows of the whole flattened model, so
        # each parameter's slots are split along the fused chunk boundaries
        # and together cover the parameter exactly once.
        params = model.init_params(np.random.default_rng(7))
        total = sum(p.size for p in params.values())
        chunk = -(-total // 4)  # ceil division
        w0 = params["w0"].size
        assert wus.sharded_state[0]["w0"]["m"].size == min(chunk, w0)
        covered = sum(
            state["w0"]["m"].size
            for state in wus.sharded_state
            if "w0" in state
        )
        assert covered == w0

    def test_state_stays_sharded_unfused(self):
        model = MLP([12, 16, 4])
        x, y = _data()
        wus = WeightUpdateShardedTrainer(
            model, LAMB(0.01), num_replicas=4, fused=False
        )
        wus.init(np.random.default_rng(7))
        assert wus.state is None
        wus.step(x, y)
        assert len(wus.sharded_state) == 4
        total = model.init_params(np.random.default_rng(7))["w0"].size
        chunk = wus.sharded_state[0]["w0"]["m"].size
        assert chunk == -(-total // 4)  # per-parameter ceil division

    @pytest.mark.parametrize("name,make_opt", OPTIMIZERS)
    def test_fused_matches_unfused(self, name, make_opt):
        """Bucketed WUS == per-parameter WUS to machine precision."""
        model = MLP([12, 16, 8, 4])
        x, y = _data()
        fused, fused_losses = _run(
            WeightUpdateShardedTrainer(model, make_opt(), num_replicas=4), x, y
        )
        plain, plain_losses = _run(
            WeightUpdateShardedTrainer(
                model, make_opt(), num_replicas=4, fused=False
            ),
            x, y,
        )
        assert _max_param_diff(fused.params, plain.params) < 1e-10
        assert fused_losses == pytest.approx(plain_losses, rel=1e-10)

    def test_mismatched_state_length(self, rng):
        opt = SGDMomentum(0.1)
        params = {"w": rng.standard_normal(8)}
        grads = [{"w": rng.standard_normal(8)} for _ in range(2)]
        with pytest.raises(ValueError):
            sharded_update(params, grads, opt, shard_states(opt.init_state(params), 3), 0)

    def test_no_devices_rejected(self):
        with pytest.raises(ValueError):
            sharded_update({}, [], SGDMomentum(0.1), [], 0)

"""SPMD partitioner tests: propagation rules and communication insertion."""

import pytest

from repro.spmd.annotations import Sharding, partial, replicated, split
from repro.spmd.ir import Graph
from repro.spmd.modelgraphs import (
    maskrcnn_graph,
    resnet_block_graph,
    spatial_seeds,
    ssd_graph,
    transformer_block_graph,
    transformer_seeds,
)
from repro.spmd.partitioner import V06_FEATURES, V07_FEATURES, partition
from repro.spmd.plan import ShardingSpec, make_partitioner


def _plan(graph, seeds, k, features=V07_FEATURES):
    """Partition through the supported facade; returns the PartitionPlan."""
    return make_partitioner(features).partition(
        graph, ShardingSpec.from_seeds(k, dict(seeds))
    )


class TestAnnotations:
    def test_classmethod_constructors(self):
        assert Sharding.replicate(4).replicated
        assert Sharding.split(4, 1).dim == 1
        assert Sharding.partial_sum(4).partial

    def test_tile_fraction(self):
        assert Sharding.replicate(4).tile_fraction() == 1.0
        assert Sharding.split(4, 0).tile_fraction() == 0.25

    def test_invalid(self):
        with pytest.raises(ValueError):
            Sharding(num_shards=0)
        with pytest.raises(ValueError):
            Sharding(num_shards=2, dim=1, partial=True)
        with pytest.raises(ValueError):
            Sharding.split(4, -1)

    def test_describe(self):
        assert "replicated" in Sharding.replicate(2).describe()
        assert "split" in Sharding.split(2, 0).describe()
        assert "partial" in Sharding.partial_sum(2).describe()


class TestDeprecatedEntryPoints:
    """The legacy free functions work but warn outside the facade."""

    def test_free_functions_warn_and_agree(self):
        with pytest.warns(DeprecationWarning, match="replicated"):
            assert replicated(4) == Sharding.replicate(4)
        with pytest.warns(DeprecationWarning, match="split"):
            assert split(4, 1) == Sharding.split(4, 1)
        with pytest.warns(DeprecationWarning, match="partial"):
            assert partial(4) == Sharding.partial_sum(4)

    def test_partition_warns_and_agrees_with_facade(self):
        g = transformer_block_graph()
        seeds = transformer_seeds(g, 4)
        with pytest.warns(DeprecationWarning, match="partition"):
            pg = partition(g, seeds, 4)
        plan = _plan(g, seeds, 4)
        assert pg.shardings == plan.shardings
        assert pg.comm_ops == plan.comm_ops
        assert pg.serial_nodes == plan.serial_nodes

    def test_facade_path_is_silent(self, recwarn):
        g = transformer_block_graph()
        _plan(g, transformer_seeds(g, 4), 4)
        assert not [
            w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
        ]


class TestShardingSpec:
    def test_validates_shard_counts(self):
        with pytest.raises(ValueError, match="shards"):
            ShardingSpec(num_shards=4, assignments=((0, Sharding.split(2, 0)),))

    def test_rejects_duplicates_and_bad_keys(self):
        s = Sharding.split(2, 0)
        with pytest.raises(ValueError, match="duplicate"):
            ShardingSpec(num_shards=2, assignments=((0, s), (0, s)))
        with pytest.raises(TypeError):
            ShardingSpec(num_shards=2, assignments=(((1, 2), s),))

    def test_resolves_handles_names_and_ids(self):
        g = transformer_block_graph()
        k = 2
        by_handle = ShardingSpec(
            num_shards=k, assignments=(("ffn_w1", Sharding.split(k, 1)),)
        ).resolve(g)
        by_id = ShardingSpec(
            num_shards=k,
            assignments=((g.handles["ffn_w1"], Sharding.split(k, 1)),),
        ).resolve(g)
        assert by_handle == by_id

    def test_unknown_reference_raises(self):
        g = transformer_block_graph()
        spec = ShardingSpec(
            num_shards=2, assignments=(("nope", Sharding.split(2, 0)),)
        )
        with pytest.raises(KeyError, match="nope"):
            spec.resolve(g)

    def test_make_partitioner_validates(self):
        with pytest.raises(ValueError, match="feature set"):
            make_partitioner("v08")
        with pytest.raises(ValueError, match="mxu"):
            make_partitioner("v07", mxu_efficiency=0.0)
        assert make_partitioner("v06").features == V06_FEATURES


class TestConvPropagation:
    def _graph(self):
        g = Graph()
        x = g.input((1, 64, 64, 3), name="image")
        w = g.parameter((3, 3, 3, 16))
        y = g.conv2d(x, w)
        g.handles = {"image": x, "y": y}
        return g

    def test_spatial_split_propagates_with_halo(self):
        g = self._graph()
        plan = _plan(g, {g.handles["image"]: Sharding.split(4, 1)}, 4)
        assert plan.shardings[g.handles["y"]].dim == 1
        halos = [c for c in plan.comm_ops if c.kind == "halo"]
        assert len(halos) == 1
        # 2 sides x 1 halo row x 64 cols x 3 channels x 2 bytes.
        assert halos[0].bytes_per_shard == pytest.approx(2 * 1 * 64 * 3 * 2)

    def test_1x1_conv_no_halo(self):
        g = Graph()
        x = g.input((1, 64, 64, 8), name="image")
        w = g.parameter((1, 1, 8, 16))
        g.conv2d(x, w)
        plan = _plan(g, {x: Sharding.split(4, 1)}, 4)
        assert not [c for c in plan.comm_ops if c.kind == "halo"]

    def test_batch_split_free(self):
        g = self._graph()
        plan = _plan(g, {g.handles["image"]: Sharding.split(4, 0)}, 4)
        assert plan.comm_ops == []
        assert plan.shardings[g.handles["y"]].dim == 0

    def test_replicated_conv(self):
        g = self._graph()
        plan = _plan(g, {}, 4)
        assert plan.shardings[g.handles["y"]].replicated
        assert plan.comm_ops == []

    def test_v06_halo_pays_double_steps(self):
        v07 = _plan(self._graph(), {0: Sharding.split(4, 1)}, 4, V07_FEATURES)
        v06 = _plan(self._graph(), {0: Sharding.split(4, 1)}, 4, V06_FEATURES)
        h07 = [c for c in v07.comm_ops if c.kind == "halo"][0]
        h06 = [c for c in v06.comm_ops if c.kind == "halo"][0]
        assert h06.steps == 2 * h07.steps


class TestMatmulPropagation:
    def test_contracting_split_yields_partial(self):
        g = Graph()
        a = g.input((8, 16))
        b = g.parameter((16, 4))
        y = g.matmul(a, b)
        plan = _plan(g, {b: Sharding.split(4, 0)}, 4)
        assert plan.compute_shardings[y].partial

    def test_partial_resolved_with_allreduce_at_use(self):
        g = Graph()
        a = g.input((8, 16))
        b = g.parameter((16, 4))
        y = g.matmul(a, b)
        g.elementwise(y, "relu")
        plan = _plan(g, {b: Sharding.split(4, 0)}, 4)
        ars = [c for c in plan.comm_ops if c.kind == "all_reduce"]
        assert len(ars) == 1
        assert ars[0].node_id == y
        assert plan.shardings[y].replicated  # after resolution
        assert plan.compute_shardings[y].partial  # at compute time

    def test_output_column_split(self):
        g = Graph()
        a = g.input((8, 16))
        b = g.parameter((16, 8))
        y = g.matmul(a, b)
        plan = _plan(g, {b: Sharding.split(4, 1)}, 4)
        assert plan.shardings[y].dim == 1
        assert plan.comm_ops == []

    def test_row_split_of_activation(self):
        g = Graph()
        a = g.input((8, 16))
        b = g.parameter((16, 8))
        y = g.matmul(a, b)
        plan = _plan(g, {a: Sharding.split(4, 0)}, 4)
        assert plan.shardings[y].dim == 0


class TestGatherTopk:
    def _graph(self):
        g = Graph()
        scores = g.input((1, 1024), name="scores")
        top = g.topk(scores, 16)
        g.gather(top, 16, 64)
        g.handles = {"scores": scores, "top": top}
        return g

    def test_v07_partitions_both(self):
        g = self._graph()
        plan = _plan(g, {g.handles["scores"]: Sharding.split(4, 1)}, 4)
        assert not plan.serial_nodes

    def test_v06_serializes_both(self):
        g = self._graph()
        plan = _plan(
            g, {g.handles["scores"]: Sharding.split(4, 1)}, 4, V06_FEATURES
        )
        assert len(plan.serial_nodes) == 2
        gathers = [c for c in plan.comm_ops if c.kind == "all_gather"]
        assert gathers  # the sharded operand had to be gathered


class TestDtypes:
    def test_nodes_carry_graph_dtype(self):
        g = Graph(dtype_bytes=4)
        x = g.input((8, 8))
        assert g.node(x).dtype_bytes == 4
        assert g.node(x).output_bytes() == 8 * 8 * 4

    def test_per_node_override(self):
        g = Graph()  # bf16 default
        x = g.input((8, 8))
        loss = g.reduce(x, dtype_bytes=4)  # f32 accumulator
        assert g.node(x).dtype_bytes == 2
        assert g.node(loss).dtype_bytes == 4

    def test_comm_bytes_follow_node_dtype(self):
        def graph_with(dtype_bytes):
            g = Graph(dtype_bytes=dtype_bytes)
            a = g.input((8, 16))
            b = g.parameter((16, 4))
            y = g.matmul(a, b)
            g.elementwise(y, "relu")
            return g, b

        g2, b2 = graph_with(2)
        g4, b4 = graph_with(4)
        ar2 = _plan(g2, {b2: Sharding.split(4, 0)}, 4).comm_ops[0]
        ar4 = _plan(g4, {b4: Sharding.split(4, 0)}, 4).comm_ops[0]
        assert ar4.bytes_per_shard == 2 * ar2.bytes_per_shard

    def test_inconsistent_explicit_dtype_raises(self):
        g = Graph(dtype_bytes=2)
        g.input((4, 4))
        g.reduce(0, dtype_bytes=4)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="inconsistent"):
                partition(g, {}, 2, V07_FEATURES, dtype_bytes=2)

    def test_graph_rejects_bad_dtype(self):
        with pytest.raises(ValueError):
            Graph(dtype_bytes=0)


class TestTrivialAndErrors:
    def test_num_shards_one_all_replicated(self):
        g = ssd_graph()
        plan = _plan(g, {}, 1)
        assert all(s.replicated for s in plan.shardings.values())
        assert plan.comm_ops == []

    def test_seed_shard_count_mismatch(self):
        g = Graph()
        x = g.input((4, 4))
        with pytest.raises(ValueError, match="shards"):
            _plan(g, {x: Sharding.split(2, 0)}, 4)

    def test_invalid_num_shards(self):
        with pytest.raises(ValueError):
            ShardingSpec(num_shards=0)

    def test_comm_accounting_helpers(self):
        g = transformer_block_graph()
        plan = _plan(g, transformer_seeds(g, 4), 4)
        by_kind = plan.partitioned.comm_by_kind()
        assert plan.partitioned.comm_bytes() == pytest.approx(
            sum(by_kind.values())
        )
        assert "all_reduce" in by_kind


class TestModelGraphs:
    def test_ssd_builds_and_partitions(self):
        g = ssd_graph()
        plan = _plan(g, spatial_seeds(g, 8), 8)
        assert any(c.kind == "halo" for c in plan.comm_ops)

    def test_maskrcnn_builds_and_partitions(self):
        g = maskrcnn_graph()
        plan = _plan(g, spatial_seeds(g, 8), 8)
        assert any(c.kind == "halo" for c in plan.comm_ops)

    def test_resnet_block_builds_and_partitions(self):
        g = resnet_block_graph()
        plan = _plan(g, spatial_seeds(g, 4), 4)
        assert any(c.kind == "halo" for c in plan.comm_ops)

    def test_transformer_feature_sharding_inserts_allreduce(self):
        g = transformer_block_graph()
        plan = _plan(g, transformer_seeds(g, 4), 4)
        ars = [c for c in plan.comm_ops if c.kind == "all_reduce"]
        # embedding (vocab-contracting), attention out proj, ffn_mm2.
        assert len(ars) >= 3

    def test_spatial_seeds_identity_at_one(self):
        g = ssd_graph()
        assert spatial_seeds(g, 1) == {}

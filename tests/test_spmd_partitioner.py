"""SPMD partitioner tests: propagation rules and communication insertion."""

import pytest

from repro.spmd.annotations import Sharding, partial, replicated, split
from repro.spmd.ir import Graph
from repro.spmd.modelgraphs import (
    maskrcnn_graph,
    spatial_seeds,
    ssd_graph,
    transformer_block_graph,
    transformer_seeds,
)
from repro.spmd.partitioner import (
    V06_FEATURES,
    V07_FEATURES,
    partition,
)


class TestAnnotations:
    def test_factories(self):
        assert replicated(4).replicated
        assert split(4, 1).dim == 1
        assert partial(4).partial

    def test_tile_fraction(self):
        assert replicated(4).tile_fraction() == 1.0
        assert split(4, 0).tile_fraction() == 0.25

    def test_invalid(self):
        with pytest.raises(ValueError):
            Sharding(num_shards=0)
        with pytest.raises(ValueError):
            Sharding(num_shards=2, dim=1, partial=True)
        with pytest.raises(ValueError):
            split(4, -1)

    def test_describe(self):
        assert "replicated" in replicated(2).describe()
        assert "split" in split(2, 0).describe()
        assert "partial" in partial(2).describe()


class TestConvPropagation:
    def _graph(self):
        g = Graph()
        x = g.input((1, 64, 64, 3), name="image")
        w = g.parameter((3, 3, 3, 16))
        y = g.conv2d(x, w)
        g.handles = {"image": x, "y": y}
        return g

    def test_spatial_split_propagates_with_halo(self):
        g = self._graph()
        pg = partition(g, {g.handles["image"]: split(4, 1)}, 4)
        assert pg.shardings[g.handles["y"]].dim == 1
        halos = [c for c in pg.comm_ops if c.kind == "halo"]
        assert len(halos) == 1
        # 2 sides x 1 halo row x 64 cols x 3 channels x 2 bytes.
        assert halos[0].bytes_per_shard == pytest.approx(2 * 1 * 64 * 3 * 2)

    def test_1x1_conv_no_halo(self):
        g = Graph()
        x = g.input((1, 64, 64, 8), name="image")
        w = g.parameter((1, 1, 8, 16))
        g.conv2d(x, w)
        pg = partition(g, {x: split(4, 1)}, 4)
        assert not [c for c in pg.comm_ops if c.kind == "halo"]

    def test_batch_split_free(self):
        g = self._graph()
        pg = partition(g, {g.handles["image"]: split(4, 0)}, 4)
        assert pg.comm_ops == []
        assert pg.shardings[g.handles["y"]].dim == 0

    def test_replicated_conv(self):
        g = self._graph()
        pg = partition(g, {}, 4)
        assert pg.shardings[g.handles["y"]].replicated
        assert pg.comm_ops == []

    def test_v06_halo_pays_double_steps(self):
        g = self._graph()
        seeds = {g.handles["image"]: split(4, 1)}
        v07 = partition(self._graph(), {0: split(4, 1)}, 4, V07_FEATURES)
        v06 = partition(self._graph(), {0: split(4, 1)}, 4, V06_FEATURES)
        h07 = [c for c in v07.comm_ops if c.kind == "halo"][0]
        h06 = [c for c in v06.comm_ops if c.kind == "halo"][0]
        assert h06.steps == 2 * h07.steps


class TestMatmulPropagation:
    def test_contracting_split_yields_partial(self):
        g = Graph()
        a = g.input((8, 16))
        b = g.parameter((16, 4))
        y = g.matmul(a, b)
        pg = partition(g, {b: split(4, 0)}, 4)
        assert pg.compute_shardings[y].partial

    def test_partial_resolved_with_allreduce_at_use(self):
        g = Graph()
        a = g.input((8, 16))
        b = g.parameter((16, 4))
        y = g.matmul(a, b)
        z = g.elementwise(y, "relu")
        pg = partition(g, {b: split(4, 0)}, 4)
        ars = [c for c in pg.comm_ops if c.kind == "all_reduce"]
        assert len(ars) == 1
        assert ars[0].node_id == y
        assert pg.shardings[y].replicated  # after resolution
        assert pg.compute_shardings[y].partial  # at compute time

    def test_output_column_split(self):
        g = Graph()
        a = g.input((8, 16))
        b = g.parameter((16, 8))
        y = g.matmul(a, b)
        pg = partition(g, {b: split(4, 1)}, 4)
        assert pg.shardings[y].dim == 1
        assert pg.comm_ops == []

    def test_row_split_of_activation(self):
        g = Graph()
        a = g.input((8, 16))
        b = g.parameter((16, 8))
        y = g.matmul(a, b)
        pg = partition(g, {a: split(4, 0)}, 4)
        assert pg.shardings[y].dim == 0


class TestGatherTopk:
    def _graph(self):
        g = Graph()
        scores = g.input((1, 1024), name="scores")
        top = g.topk(scores, 16)
        g.gather(top, 16, 64)
        g.handles = {"scores": scores, "top": top}
        return g

    def test_v07_partitions_both(self):
        g = self._graph()
        pg = partition(g, {g.handles["scores"]: split(4, 1)}, 4, V07_FEATURES)
        assert not pg.serial_nodes

    def test_v06_serializes_both(self):
        g = self._graph()
        pg = partition(g, {g.handles["scores"]: split(4, 1)}, 4, V06_FEATURES)
        assert len(pg.serial_nodes) == 2
        gathers = [c for c in pg.comm_ops if c.kind == "all_gather"]
        assert gathers  # the sharded operand had to be gathered


class TestTrivialAndErrors:
    def test_num_shards_one_all_replicated(self):
        g = ssd_graph()
        pg = partition(g, {}, 1)
        assert all(s.replicated for s in pg.shardings.values())
        assert pg.comm_ops == []

    def test_seed_shard_count_mismatch(self):
        g = Graph()
        x = g.input((4, 4))
        with pytest.raises(ValueError, match="shards"):
            partition(g, {x: split(2, 0)}, 4)

    def test_invalid_num_shards(self):
        with pytest.raises(ValueError):
            partition(Graph(), {}, 0)

    def test_comm_accounting_helpers(self):
        g = transformer_block_graph()
        pg = partition(g, transformer_seeds(g, 4), 4)
        by_kind = pg.comm_by_kind()
        assert pg.comm_bytes() == pytest.approx(sum(by_kind.values()))
        assert "all_reduce" in by_kind


class TestModelGraphs:
    def test_ssd_builds_and_partitions(self):
        g = ssd_graph()
        pg = partition(g, spatial_seeds(g, 8), 8)
        assert any(c.kind == "halo" for c in pg.comm_ops)

    def test_maskrcnn_builds_and_partitions(self):
        g = maskrcnn_graph()
        pg = partition(g, spatial_seeds(g, 8), 8)
        assert any(c.kind == "halo" for c in pg.comm_ops)

    def test_transformer_feature_sharding_inserts_allreduce(self):
        g = transformer_block_graph()
        pg = partition(g, transformer_seeds(g, 4), 4)
        ars = [c for c in pg.comm_ops if c.kind == "all_reduce"]
        # embedding (vocab-contracting), attention out proj, ffn_mm2.
        assert len(ars) >= 3

    def test_spatial_seeds_identity_at_one(self):
        g = ssd_graph()
        assert spatial_seeds(g, 1) == {}

"""Optimizer tests: SGD, LARS, LAMB, schedules, and shard-consistency."""

import numpy as np
import pytest

from repro.optim import (
    Adam,
    LAMB,
    LARS,
    ConstantSchedule,
    LinearWarmupPolyDecay,
    PiecewiseConstant,
    SGDMomentum,
)


def _toy_params(rng):
    return {
        "w0": rng.standard_normal((4, 3)),
        "bias0": rng.standard_normal(3),
    }


def _toy_grads(rng, params):
    return {k: rng.standard_normal(v.shape) for k, v in params.items()}


ALL_OPTIMIZERS = [
    ("sgd", lambda: SGDMomentum(0.1)),
    ("lars", lambda: LARS(0.5)),
    ("lamb", lambda: LAMB(0.01)),
    ("adam", lambda: Adam(0.01)),
]


class TestCommon:
    @pytest.mark.parametrize("name,make", ALL_OPTIMIZERS)
    def test_update_changes_params(self, name, make, rng):
        opt = make()
        params = _toy_params(rng)
        grads = _toy_grads(rng, params)
        state = opt.init_state(params)
        new_params, new_state = opt.update(params, grads, state, 0)
        assert set(new_params) == set(params)
        for k in params:
            assert new_params[k].shape == params[k].shape
            assert not np.allclose(new_params[k], params[k])

    @pytest.mark.parametrize("name,make", ALL_OPTIMIZERS)
    def test_zero_grads_with_zero_momentum_noop_modulo_decay(self, name, make, rng):
        opt = make()
        params = _toy_params(rng)
        grads = {k: np.zeros_like(v) for k, v in params.items()}
        state = opt.init_state(params)
        new_params, _ = opt.update(params, grads, state, 0)
        # LAMB/LARS apply weight decay even at zero grad; SGD does not.
        if name == "sgd":
            for k in params:
                assert np.allclose(new_params[k], params[k])

    @pytest.mark.parametrize("name,make", ALL_OPTIMIZERS)
    def test_gradient_shape_mismatch(self, name, make, rng):
        opt = make()
        params = _toy_params(rng)
        grads = {k: np.zeros(99) for k in params}
        with pytest.raises(ValueError):
            opt.update(params, grads, opt.init_state(params), 0)

    @pytest.mark.parametrize("name,make", ALL_OPTIMIZERS)
    def test_shard_consistency(self, name, make, rng):
        """apply() on shards with globally summed stats == full update.

        This is the invariant weight-update sharding relies on (§3.2)."""
        opt = make()
        params = _toy_params(rng)
        grads = _toy_grads(rng, params)
        state = opt.init_state(params)
        full, _ = opt.update(params, dict(grads), state, 3)
        for key, p in params.items():
            flat_p = p.reshape(-1)
            flat_g = np.asarray(grads[key]).reshape(-1)
            halves = np.array_split(np.arange(flat_p.size), 2)
            stats = {}
            for idx in halves:
                sub_state = {
                    slot: arr.reshape(-1)[idx] for slot, arr in state[key].items()
                }
                partial = opt.norm_stats(key, flat_p[idx], flat_g[idx], sub_state, 3)
                for k2, v2 in partial.items():
                    stats[k2] = stats.get(k2, 0.0) + v2
            pieces = []
            for idx in halves:
                sub_state = {
                    slot: arr.reshape(-1)[idx] for slot, arr in state[key].items()
                }
                new_piece, _ = opt.apply(
                    key, flat_p[idx], flat_g[idx], sub_state, 3, stats
                )
                pieces.append(new_piece)
            rebuilt = np.concatenate(pieces).reshape(p.shape)
            assert np.allclose(rebuilt, full[key], rtol=1e-10)


class TestSGD:
    def test_momentum_accumulates(self, rng):
        opt = SGDMomentum(1.0, momentum=0.5)
        params = {"w": np.zeros(3)}
        grads = {"w": np.ones(3)}
        state = opt.init_state(params)
        p1, state = opt.update(params, grads, state, 0)
        p2, state = opt.update(p1, grads, state, 1)
        # v1 = 1, p1 = -1; v2 = 1.5, p2 = -2.5
        assert np.allclose(p2["w"], -2.5)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGDMomentum(0.1, momentum=1.0)


class TestLARS:
    def test_trust_ratio_scales_update(self, rng):
        opt = LARS(1.0, momentum=0.0, weight_decay=0.0, trust_coefficient=0.001)
        w = np.full(4, 2.0)
        g = np.full(4, 1.0)
        state = opt.init_state({"w": w})
        new, _ = opt.update({"w": w}, {"w": g}, state, 0)
        # local_lr = 0.001 * ||w|| / ||g|| = 0.001 * 4/2 = 0.002
        assert np.allclose(new["w"], w - 0.002 * g)

    def test_skip_list_uses_plain_sgd(self, rng):
        opt = LARS(0.1, momentum=0.0)
        b = np.full(3, 2.0)
        g = np.ones(3)
        new, _ = opt.update({"bias0": b}, {"bias0": g}, opt.init_state({"bias0": b}), 0)
        assert np.allclose(new["bias0"], b - 0.1 * g)

    def test_zero_norm_safe(self):
        opt = LARS(0.1)
        params = {"w": np.zeros(3)}
        grads = {"w": np.zeros(3)}
        new, _ = opt.update(params, grads, opt.init_state(params), 0)
        assert np.all(np.isfinite(new["w"]))


class TestLAMB:
    def test_step_size_bounded_by_trust(self, rng):
        opt = LAMB(0.01, weight_decay=0.0)
        params = {"w": rng.standard_normal(64)}
        grads = {"w": 1e6 * rng.standard_normal(64)}  # huge gradients
        new, _ = opt.update(params, grads, opt.init_state(params), 0)
        delta = np.linalg.norm(new["w"] - params["w"])
        w_norm = np.linalg.norm(params["w"])
        # ||delta|| = lr * trust * ||r|| = lr * ||w||: scale-invariant.
        assert delta == pytest.approx(0.01 * w_norm, rel=1e-6)

    def test_bias_correction_first_step(self, rng):
        opt = LAMB(0.001, weight_decay=0.0)
        params = {"w": np.full(8, 3.0)}
        grads = {"w": np.full(8, 0.5)}
        new, state = opt.update(params, grads, opt.init_state(params), 0)
        # With constant gradients, r ~ 1/sqrt(1) elementwise after bias
        # correction: the update direction is the sign of g.
        assert np.all(new["w"] < params["w"])
        assert np.all(state["w"]["m"] > 0)

    def test_decay_skip_patterns(self):
        opt = LAMB(0.01)
        assert not opt._decay("encoder/layernorm/gamma")
        assert not opt._decay("bias")
        assert opt._decay("encoder/dense/kernel")

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            LAMB(0.01, beta1=1.0)


class TestSchedules:
    def test_constant(self):
        s = ConstantSchedule(0.5)
        assert s(0) == s(1000) == 0.5

    def test_warmup_ramps_linearly(self):
        s = LinearWarmupPolyDecay(peak=1.0, warmup_steps=10, total_steps=100)
        assert s(0) == pytest.approx(0.1)
        assert s(4) == pytest.approx(0.5)
        assert s(9) == pytest.approx(1.0)

    def test_decay_reaches_end(self):
        s = LinearWarmupPolyDecay(peak=1.0, warmup_steps=0, total_steps=100, end=0.1)
        assert s(100) == pytest.approx(0.1)
        assert s(50) > 0.1

    def test_power_one_is_linear(self):
        s = LinearWarmupPolyDecay(peak=1.0, warmup_steps=0, total_steps=100, power=1.0)
        assert s(50) == pytest.approx(0.5)

    def test_warmup_must_end(self):
        with pytest.raises(ValueError):
            LinearWarmupPolyDecay(peak=1.0, warmup_steps=100, total_steps=100)

    def test_piecewise(self):
        s = PiecewiseConstant([10, 20], [1.0, 0.1, 0.01])
        assert s(5) == 1.0
        assert s(15) == 0.1
        assert s(25) == 0.01

    def test_piecewise_validation(self):
        with pytest.raises(ValueError):
            PiecewiseConstant([10], [1.0])
        with pytest.raises(ValueError):
            PiecewiseConstant([20, 10], [1.0, 0.5, 0.1])

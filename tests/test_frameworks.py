"""Framework runtime model tests (Table 2 mechanisms)."""

import pytest

from repro.frameworks.base import GraphProfile
from repro.frameworks.jax import MultiClientJAX
from repro.frameworks.tensorflow import SingleClientTF

PROFILE = GraphProfile("toy", compile_seconds=100.0, graph_build_seconds_per_worker=1.0)


class TestSingleClientTF:
    def test_init_linear_in_hosts(self):
        tf = SingleClientTF()
        t64 = tf.init_time(64, PROFILE)
        t512 = tf.init_time(512, PROFILE)
        # The per-worker term dominates the growth.
        assert t512 - t64 == pytest.approx((512 - 64) * (1.0 + tf.rpc_seconds_per_host))

    def test_metric_gather_scales_with_hosts(self):
        tf = SingleClientTF()
        assert tf.eval_metric_time(512, 8.0) > tf.eval_metric_time(8, 8.0)

    def test_invalid_hosts(self):
        with pytest.raises(ValueError):
            SingleClientTF().init_time(0, PROFILE)
        with pytest.raises(ValueError):
            SingleClientTF().eval_metric_time(0, 8.0)


class TestMultiClientJAX:
    def test_init_near_constant(self):
        jax = MultiClientJAX()
        t64 = jax.init_time(64, PROFILE)
        t512 = jax.init_time(512, PROFILE)
        # Only the log term grows: 3 doublings x 6s.
        assert t512 - t64 == pytest.approx(3 * 6.0)

    def test_metric_time_tiny(self):
        assert MultiClientJAX().eval_metric_time(512, 8.0) < 0.1

    def test_invalid_hosts(self):
        with pytest.raises(ValueError):
            MultiClientJAX().init_time(0, PROFILE)


class TestContrast:
    def test_jax_beats_tf_at_scale(self):
        """Table 2: JAX init is several times lower at 512 hosts."""
        tf = SingleClientTF().init_time(512, PROFILE)
        jax = MultiClientJAX().init_time(512, PROFILE)
        assert jax < tf / 2

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            GraphProfile("x", -1.0, 0.0)

"""Framework runtime model tests (Table 2 mechanisms)."""

import pytest

from repro.frameworks.base import GraphProfile
from repro.frameworks.jax import MultiClientJAX
from repro.frameworks.tensorflow import SingleClientTF

PROFILE = GraphProfile("toy", compile_seconds=100.0, graph_build_seconds_per_worker=1.0)


class TestSingleClientTF:
    def test_init_linear_in_hosts(self):
        tf = SingleClientTF()
        t64 = tf.init_time(64, PROFILE)
        t512 = tf.init_time(512, PROFILE)
        # The per-worker term dominates the growth.
        assert t512 - t64 == pytest.approx((512 - 64) * (1.0 + tf.rpc_seconds_per_host))

    def test_metric_gather_scales_with_hosts(self):
        tf = SingleClientTF()
        assert tf.eval_metric_time(512, 8.0) > tf.eval_metric_time(8, 8.0)

    def test_invalid_hosts(self):
        with pytest.raises(ValueError):
            SingleClientTF().init_time(0, PROFILE)
        with pytest.raises(ValueError):
            SingleClientTF().eval_metric_time(0, 8.0)


class TestMultiClientJAX:
    def test_init_near_constant(self):
        jax = MultiClientJAX()
        t64 = jax.init_time(64, PROFILE)
        t512 = jax.init_time(512, PROFILE)
        # Only the log term grows: 3 doublings x 6s.
        assert t512 - t64 == pytest.approx(3 * 6.0)

    def test_metric_time_tiny(self):
        assert MultiClientJAX().eval_metric_time(512, 8.0) < 0.1

    def test_invalid_hosts(self):
        with pytest.raises(ValueError):
            MultiClientJAX().init_time(0, PROFILE)


class TestContrast:
    def test_jax_beats_tf_at_scale(self):
        """Table 2: JAX init is several times lower at 512 hosts."""
        tf = SingleClientTF().init_time(512, PROFILE)
        jax = MultiClientJAX().init_time(512, PROFILE)
        assert jax < tf / 2

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            GraphProfile("x", -1.0, 0.0)


class TestFailureDomain:
    """The control-plane facts the topologies consume (PR 4)."""

    def test_coordinator_host_facts(self):
        tf = SingleClientTF()
        jax = MultiClientJAX()
        assert tf.coordinator_host == 0
        assert jax.coordinator_host is None
        assert tf.is_fatal_host_failure(0)
        assert not tf.is_fatal_host_failure(3)
        assert not any(jax.is_fatal_host_failure(h) for h in range(8))

    def test_reinit_single_client_repays_linear_term(self):
        tf = SingleClientTF()
        # Default reinit == full init: the graph is rebuilt per worker.
        assert tf.reinit_time(256, PROFILE) == tf.init_time(256, PROFILE)
        assert (
            tf.reinit_time(512, PROFILE) - tf.reinit_time(64, PROFILE)
        ) == pytest.approx((512 - 64) * (1.0 + tf.rpc_seconds_per_host))

    def test_reinit_multi_client_skips_recompile(self):
        jax = MultiClientJAX()
        # Survivors reuse their binaries: re-init drops the compile term.
        assert jax.reinit_time(256, PROFILE) == pytest.approx(
            jax.init_time(256, PROFILE) - PROFILE.compile_seconds
        )

    def test_table2_shape_through_topologies(self):
        """Single-client init grows with workers; multi-client is ~flat."""
        from repro.controlplane import (
            HostGroup,
            MultiClientGroup,
            SingleClientCoordinator,
        )

        inits = {"tf": [], "jax": []}
        for x in (8, 16, 32):  # 64 -> 256 chips = 8 -> 32 hosts
            group = HostGroup((x, 8), chips_per_host=8)
            single = SingleClientCoordinator(group)
            multi = MultiClientGroup(group)
            inits["tf"].append(single.init_time(PROFILE))
            inits["jax"].append(multi.init_time(PROFILE))
        # TF pays the linear per-worker term for every extra host ...
        rpc = SingleClientTF().rpc_seconds_per_host
        assert inits["tf"][2] - inits["tf"][0] == pytest.approx(
            (32 - 8) * (1.0 + rpc)
        )
        # ... JAX pays only the log2 consensus term (2 doublings x 6 s).
        assert inits["jax"][2] - inits["jax"][0] == pytest.approx(2 * 6.0)

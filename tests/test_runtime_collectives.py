"""Functional collective tests: the numpy ring algorithms vs ground truth."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numerics.bfloat16 import BF16_EPS
from repro.runtime.collectives import (
    ShardedValue,
    all_gather_grid,
    reduce_scatter_grid,
    ring_all_gather,
    ring_all_reduce,
    ring_reduce_scatter,
    two_phase_all_reduce,
)


def _device_buffers(rng, n, shape):
    return [rng.standard_normal(shape) for _ in range(n)]


class TestRingReduceScatter:
    def test_shards_sum_to_total(self, rng):
        arrays = _device_buffers(rng, 4, (40,))
        sv = ring_reduce_scatter(arrays, "f64")
        assert np.allclose(sv.assemble(), np.sum(arrays, axis=0))

    def test_padding_handled(self, rng):
        arrays = _device_buffers(rng, 4, (37,))  # 37 % 4 != 0
        sv = ring_reduce_scatter(arrays, "f64")
        assert sv.assemble().shape == (37,)
        assert np.allclose(sv.assemble(), np.sum(arrays, axis=0))

    def test_multidim_buffers(self, rng):
        arrays = _device_buffers(rng, 3, (4, 5))
        sv = ring_reduce_scatter(arrays, "f64")
        assert np.allclose(sv.assemble(), np.sum(arrays, axis=0))

    def test_single_device(self, rng):
        arrays = _device_buffers(rng, 1, (10,))
        sv = ring_reduce_scatter(arrays, "f64")
        assert np.allclose(sv.assemble(), arrays[0])

    def test_shapes_must_match(self, rng):
        with pytest.raises(ValueError):
            ring_reduce_scatter([np.zeros(4), np.zeros(5)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ring_reduce_scatter([])

    def test_unknown_policy(self, rng):
        with pytest.raises(ValueError):
            ring_reduce_scatter(_device_buffers(rng, 2, (4,)), "f16")

    def test_each_device_owns_equal_chunk(self, rng):
        arrays = _device_buffers(rng, 4, (40,))
        sv = ring_reduce_scatter(arrays, "f64")
        assert all(s.size == 10 for s in sv.shards)


class TestRingAllGather:
    def test_roundtrip(self, rng):
        arrays = _device_buffers(rng, 5, (23,))
        sv = ring_reduce_scatter(arrays, "f64")
        gathered = ring_all_gather(sv)
        truth = np.sum(arrays, axis=0)
        assert len(gathered) == 5
        for g in gathered:
            assert np.allclose(g, truth)

    def test_single_device(self, rng):
        sv = ring_reduce_scatter(_device_buffers(rng, 1, (7,)), "f64")
        (out,) = ring_all_gather(sv)
        assert out.shape == (7,)


class TestRingAllReduce:
    def test_matches_sum_f64(self, rng):
        arrays = _device_buffers(rng, 6, (31,))
        out = ring_all_reduce(arrays, "f64")
        truth = np.sum(arrays, axis=0)
        for o in out:
            assert np.allclose(o, truth, rtol=1e-12)

    def test_f32_close(self, rng):
        arrays = [a.astype(np.float32) for a in _device_buffers(rng, 8, (64,))]
        out = ring_all_reduce(arrays, "f32")
        truth = np.sum(arrays, axis=0, dtype=np.float64)
        assert np.allclose(out[0], truth, rtol=1e-5, atol=1e-5)

    def test_bf16_within_bound(self, rng):
        n = 8
        arrays = [a.astype(np.float32) for a in _device_buffers(rng, n, (64,))]
        out = ring_all_reduce(arrays, "bf16")
        truth = np.sum(arrays, axis=0, dtype=np.float64)
        scale = np.sum(np.abs(arrays), axis=0)
        assert np.all(np.abs(out[0] - truth) <= 3 * n * BF16_EPS * scale + 1e-5)

    @given(
        n=st.integers(min_value=1, max_value=9),
        size=st.integers(min_value=1, max_value=50),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_matches_sum(self, n, size, seed):
        rng = np.random.default_rng(seed)
        arrays = [rng.standard_normal(size) for _ in range(n)]
        out = ring_all_reduce(arrays, "f64")
        truth = np.sum(arrays, axis=0)
        assert len(out) == n
        for o in out:
            assert np.allclose(o, truth, rtol=1e-10, atol=1e-12)


class TestTwoPhase:
    def test_matches_sum(self, rng):
        grid = [[rng.standard_normal((5, 3)) for _ in range(3)] for _ in range(4)]
        out = two_phase_all_reduce(grid, "f64")
        truth = np.sum([g for col in grid for g in col], axis=0)
        for x in range(4):
            for y in range(3):
                assert np.allclose(out[x][y], truth, rtol=1e-12)

    def test_shard_transform_applied(self, rng):
        grid = [[rng.standard_normal(11) for _ in range(2)] for _ in range(2)]
        out = two_phase_all_reduce(grid, "f64", shard_transform=lambda s: -s)
        truth = -np.sum([g for col in grid for g in col], axis=0)
        assert np.allclose(out[0][0], truth)

    def test_shard_transform_shape_check(self, rng):
        grid = [[rng.standard_normal(8) for _ in range(2)] for _ in range(2)]
        with pytest.raises(ValueError, match="preserve shape"):
            two_phase_all_reduce(grid, "f64", shard_transform=lambda s: s[:1])

    def test_ragged_grid_rejected(self, rng):
        grid = [[np.zeros(4)], [np.zeros(4), np.zeros(4)]]
        with pytest.raises(ValueError, match="ragged"):
            two_phase_all_reduce(grid)

    @given(
        x=st.integers(min_value=1, max_value=4),
        y=st.integers(min_value=1, max_value=4),
        size=st.integers(min_value=1, max_value=30),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_grid_sum(self, x, y, size, seed):
        rng = np.random.default_rng(seed)
        grid = [[rng.standard_normal(size) for _ in range(y)] for _ in range(x)]
        out = two_phase_all_reduce(grid, "f64")
        truth = np.sum([g for col in grid for g in col], axis=0)
        for col in out:
            for o in col:
                assert np.allclose(o, truth, rtol=1e-10, atol=1e-12)


class TestGridPhases:
    def test_reduce_scatter_grid_shards(self, rng):
        grid = [[rng.standard_normal(24) for _ in range(3)] for _ in range(2)]
        reduced = reduce_scatter_grid(grid, "f64")
        # Reassemble: for each y chunk, concatenate x shards; then concat y.
        truth = np.sum([g for col in grid for g in col], axis=0)
        pieces = []
        for y in range(3):
            for x in range(2):
                pieces.append(reduced[x][y].shards[0])
        assert np.allclose(np.concatenate(pieces)[:24], truth)

    def test_all_gather_grid_roundtrip(self, rng):
        grid = [[rng.standard_normal(24) for _ in range(3)] for _ in range(2)]
        reduced = reduce_scatter_grid(grid, "f64")
        shards = [[reduced[x][y].shards[0] for y in range(3)] for x in range(2)]
        full = all_gather_grid(shards, (24,), "f64")
        truth = np.sum([g for col in grid for g in col], axis=0)
        for col in full:
            for o in col:
                assert np.allclose(o, truth)


class TestShardedValue:
    def test_assemble_strips_padding(self):
        sv = ShardedValue(
            shards=[np.arange(3.0), np.array([3.0, 0.0, 0.0])],
            shape=(4,),
            padded_size=6,
        )
        assert np.array_equal(sv.assemble(), np.arange(4.0))

"""Train/eval loop simulation tests (§3.4 / §4.6)."""

import pytest

from repro.core.loop import (
    dlrm_eval_accumulation_ablation,
    simulate_train_eval_loop,
)


def _loop(**overrides):
    kwargs = dict(
        train_steps=20,
        device_step_seconds=1e-3,
        infeed_seconds_per_batch=1e-4,
        eval_interval_steps=10,
        eval_steps_per_pass=5,
        eval_step_seconds=5e-4,
        host_roundtrip_seconds=2e-3,
        accumulate_eval_on_device=True,
    )
    kwargs.update(overrides)
    return simulate_train_eval_loop(**kwargs)


class TestLoop:
    def test_total_accounts_for_components(self):
        r = _loop()
        assert r.total_seconds >= r.train_seconds + r.eval_seconds + r.host_sync_seconds

    def test_train_time_exact(self):
        r = _loop()
        assert r.train_seconds == pytest.approx(20 * 1e-3)

    def test_eval_passes_counted(self):
        r = _loop()
        # 2 eval passes x 5 steps x 0.5 ms.
        assert r.eval_seconds == pytest.approx(2 * 5 * 5e-4)

    def test_accumulation_reduces_host_sync(self):
        naive = _loop(accumulate_eval_on_device=False)
        opt = _loop(accumulate_eval_on_device=True)
        # 2 passes: 2 round trips accumulated vs 10 per-step.
        assert opt.host_sync_seconds == pytest.approx(2 * 2e-3)
        assert naive.host_sync_seconds == pytest.approx(10 * 2e-3)
        assert opt.total_seconds < naive.total_seconds

    def test_slow_infeed_stalls(self):
        r = _loop(infeed_seconds_per_batch=2e-3, prefetch_batches=1)
        assert r.stall_seconds > 0
        assert r.total_seconds > 20 * 1e-3

    def test_no_eval(self):
        r = _loop(eval_steps_per_pass=0)
        assert r.eval_seconds == 0.0
        assert r.host_sync_seconds == 0.0

    def test_trace_categories(self):
        r = _loop()
        cats = r.trace.by_category()
        assert set(cats) >= {"train", "eval", "host", "infeed"}
        assert cats["train"] == pytest.approx(r.train_seconds)

    def test_chrome_trace_exports(self):
        r = _loop()
        events = r.trace.to_chrome_trace()
        spans = [e for e in events if e["ph"] == "X"]
        assert len(spans) > 20
        assert all(e["ph"] in ("X", "M") for e in events)
        assert all(e["args"]["actor"] == e["tid"] for e in spans)

    def test_validation(self):
        with pytest.raises(ValueError):
            _loop(train_steps=0)
        with pytest.raises(ValueError):
            _loop(device_step_seconds=0.0)


class TestDlrmAblation:
    def test_accumulation_claim(self):
        """Section 4.6: per-step host communication is an unacceptable
        overhead; on-device accumulation removes most of it."""
        naive, opt = dlrm_eval_accumulation_ablation()
        assert naive.eval_overhead_fraction > 2 * opt.eval_overhead_fraction
        assert opt.total_seconds < naive.total_seconds
        # Train time itself is untouched.
        assert naive.train_seconds == pytest.approx(opt.train_seconds)

"""Benchmark: the discrete-event simulator on collective schedules."""

import pytest

from repro.comm.schedule import simulate_ring_reduce_scatter
from repro.hardware.rings import all_y_rings, model_peer_ring
from repro.hardware.topology import single_pod, slice_for_chips


@pytest.fixture(scope="module")
def pod():
    return single_pod()


def test_des_all_column_rings(benchmark, pod):
    rings = all_y_rings(pod)
    t = benchmark(simulate_ring_reduce_scatter, pod, rings, 1e6)
    assert t > 0


def test_des_peer_rings_contention(benchmark, pod):
    rings = [model_peer_ring(pod, 0, 4, p) for p in range(4)]
    t = benchmark(simulate_ring_reduce_scatter, pod, rings, 1e6)
    assert t > 0


def test_des_small_slice(benchmark):
    mesh = slice_for_chips(64)
    from repro.hardware.rings import y_ring

    t = benchmark(simulate_ring_reduce_scatter, mesh, y_ring(mesh, 0), 1e6)
    assert t > 0

"""Benchmark: functional collective kernels on the virtual mesh.

Every vectorized kernel is benchmarked next to its step-by-step
``_reference_*`` twin (kept in :mod:`repro.runtime.collectives` as the
bit-identity oracle), so a single ``--benchmark-enable`` run produces the
before/after speedup table that ``benchmarks/run_benchmarks.py`` writes to
``BENCH_collectives.json``.  The 256-device case guards the scaling claim:
a full ring all-reduce at pod scale must stay under two seconds.
"""

import time

import numpy as np
import pytest

from repro.runtime.bucket import GradientBucket
from repro.runtime.collectives import (
    _reference_ring_all_reduce,
    _reference_two_phase_all_reduce,
    ring_all_reduce,
    two_phase_all_reduce,
)

SIZE = 1 << 16
DEVICES = 16
BIG_DEVICES = 256


@pytest.fixture(scope="module")
def ring_inputs():
    rng = np.random.default_rng(0)
    return [rng.standard_normal(SIZE).astype(np.float32) for _ in range(DEVICES)]


@pytest.fixture(scope="module")
def grid_inputs():
    rng = np.random.default_rng(0)
    return [
        [rng.standard_normal(SIZE).astype(np.float32) for _ in range(4)]
        for _ in range(4)
    ]


@pytest.fixture(scope="module")
def big_ring_inputs():
    rng = np.random.default_rng(1)
    return [
        rng.standard_normal(SIZE).astype(np.float32) for _ in range(BIG_DEVICES)
    ]


@pytest.fixture(scope="module")
def bucket_trees():
    rng = np.random.default_rng(2)
    shapes = {
        "w0": (128, 256), "b0": (256,), "w1": (256, 96), "b1": (96,),
        "w2": (96, 64), "b2": (64,),
    }
    return [
        {k: rng.standard_normal(v).astype(np.float32) for k, v in shapes.items()}
        for _ in range(DEVICES)
    ]


def _annotate(benchmark, devices, payload):
    benchmark.extra_info["devices"] = devices
    benchmark.extra_info["payload_floats"] = payload


def test_ring_all_reduce_f32(benchmark, ring_inputs):
    _annotate(benchmark, DEVICES, SIZE)
    out = benchmark(ring_all_reduce, ring_inputs, "f32")
    truth = np.sum(ring_inputs, axis=0, dtype=np.float64)
    assert np.allclose(out[0], truth, rtol=1e-4, atol=1e-3)


def test_ring_all_reduce_f32_reference(benchmark, ring_inputs):
    _annotate(benchmark, DEVICES, SIZE)
    out = benchmark(_reference_ring_all_reduce, ring_inputs, "f32")
    truth = np.sum(ring_inputs, axis=0, dtype=np.float64)
    assert np.allclose(out[0], truth, rtol=1e-4, atol=1e-3)


def test_ring_all_reduce_bf16(benchmark, ring_inputs):
    _annotate(benchmark, DEVICES, SIZE)
    out = benchmark(ring_all_reduce, ring_inputs, "bf16")
    truth = np.sum(ring_inputs, axis=0, dtype=np.float64)
    assert np.allclose(out[0], truth, rtol=0.2, atol=0.5)


def test_ring_all_reduce_bf16_reference(benchmark, ring_inputs):
    _annotate(benchmark, DEVICES, SIZE)
    out = benchmark(_reference_ring_all_reduce, ring_inputs, "bf16")
    truth = np.sum(ring_inputs, axis=0, dtype=np.float64)
    assert np.allclose(out[0], truth, rtol=0.2, atol=0.5)


def test_two_phase_all_reduce(benchmark, grid_inputs):
    _annotate(benchmark, DEVICES, SIZE)
    out = benchmark(two_phase_all_reduce, grid_inputs, "f32")
    truth = np.sum([g for col in grid_inputs for g in col], axis=0,
                   dtype=np.float64)
    assert np.allclose(out[0][0], truth, rtol=1e-4, atol=1e-3)


def test_two_phase_all_reduce_reference(benchmark, grid_inputs):
    _annotate(benchmark, DEVICES, SIZE)
    out = benchmark(_reference_two_phase_all_reduce, grid_inputs, "f32")
    truth = np.sum([g for col in grid_inputs for g in col], axis=0,
                   dtype=np.float64)
    assert np.allclose(out[0][0], truth, rtol=1e-4, atol=1e-3)


def test_ring_all_reduce_f32_256dev(benchmark, big_ring_inputs):
    """Pod-scale ring: 256 devices x 64K floats must finish in < 2 s."""
    _annotate(benchmark, BIG_DEVICES, SIZE)
    out = benchmark(ring_all_reduce, big_ring_inputs, "f32")
    truth = np.sum(big_ring_inputs, axis=0, dtype=np.float64)
    assert np.allclose(out[0], truth, rtol=1e-3, atol=1e-2)
    start = time.perf_counter()
    ring_all_reduce(big_ring_inputs, "f32")
    assert time.perf_counter() - start < 2.0


def test_bucketed_all_reduce(benchmark, bucket_trees):
    """One fused collective for a whole parameter tree (the trainer path)."""
    bucket = GradientBucket(bucket_trees[0])
    _annotate(benchmark, DEVICES, bucket.size)
    out = benchmark(bucket.all_reduce, bucket_trees, "f32")
    truth = np.sum([t["b0"] for t in bucket_trees], axis=0, dtype=np.float64)
    assert np.allclose(out[0]["b0"], truth, rtol=1e-4, atol=1e-3)

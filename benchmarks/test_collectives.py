"""Benchmark: functional collective kernels on the virtual mesh."""

import numpy as np
import pytest

from repro.runtime.collectives import ring_all_reduce, two_phase_all_reduce

SIZE = 1 << 16


@pytest.fixture(scope="module")
def ring_inputs():
    rng = np.random.default_rng(0)
    return [rng.standard_normal(SIZE).astype(np.float32) for _ in range(16)]


@pytest.fixture(scope="module")
def grid_inputs():
    rng = np.random.default_rng(0)
    return [
        [rng.standard_normal(SIZE).astype(np.float32) for _ in range(4)]
        for _ in range(4)
    ]


def test_ring_all_reduce_f32(benchmark, ring_inputs):
    out = benchmark(ring_all_reduce, ring_inputs, "f32")
    truth = np.sum(ring_inputs, axis=0, dtype=np.float64)
    assert np.allclose(out[0], truth, rtol=1e-4, atol=1e-3)


def test_ring_all_reduce_bf16(benchmark, ring_inputs):
    out = benchmark(ring_all_reduce, ring_inputs, "bf16")
    truth = np.sum(ring_inputs, axis=0, dtype=np.float64)
    assert np.allclose(out[0], truth, rtol=0.2, atol=0.5)


def test_two_phase_all_reduce(benchmark, grid_inputs):
    out = benchmark(two_phase_all_reduce, grid_inputs, "f32")
    truth = np.sum([g for col in grid_inputs for g in col], axis=0,
                   dtype=np.float64)
    assert np.allclose(out[0][0], truth, rtol=1e-4, atol=1e-3)

"""Benchmark: functional collective kernels on the virtual mesh.

Every vectorized kernel is benchmarked next to its step-by-step
``_reference_*`` twin (kept in :mod:`repro.runtime.collectives` as the
bit-identity oracle), so a single ``--benchmark-enable`` run produces the
before/after speedup table that ``benchmarks/run_benchmarks.py`` writes to
``BENCH_collectives.json``.  The pod-scale cases guard the scaling claim:
the device-major (stacked) path runs full-mesh all-reduces at 256, 1024
and 4096 devices, each of which must stay under two seconds per call.
The ``_reference_*`` twins are only benchmarked at 16 devices — at 4096
the O(n^2)-Python-steps reference takes minutes per round.
"""

import time

import numpy as np
import pytest

from repro.runtime.bucket import GradientBucket
from repro.runtime.collectives import (
    _reference_ring_all_reduce,
    _reference_two_phase_all_reduce,
    ring_all_reduce,
    ring_all_reduce_stacked,
    two_phase_all_reduce,
    two_phase_all_reduce_stacked,
)

SIZE = 1 << 16
DEVICES = 16
BIG_DEVICES = 256
HUGE_DEVICES = 1024
MAX_DEVICES = 4096


@pytest.fixture(scope="module")
def ring_inputs():
    rng = np.random.default_rng(0)
    return [rng.standard_normal(SIZE).astype(np.float32) for _ in range(DEVICES)]


@pytest.fixture(scope="module")
def grid_inputs():
    rng = np.random.default_rng(0)
    return [
        [rng.standard_normal(SIZE).astype(np.float32) for _ in range(4)]
        for _ in range(4)
    ]


@pytest.fixture(scope="module")
def big_ring_block():
    rng = np.random.default_rng(1)
    return rng.standard_normal((BIG_DEVICES, SIZE)).astype(np.float32)


@pytest.fixture(scope="module")
def huge_ring_block():
    rng = np.random.default_rng(3)
    return rng.standard_normal((HUGE_DEVICES, SIZE)).astype(np.float32)


@pytest.fixture(scope="module")
def max_ring_block():
    # 4096 x 64K floats = 1 GiB of gradients, the full-pod configuration.
    rng = np.random.default_rng(4)
    return rng.standard_normal((MAX_DEVICES, SIZE)).astype(np.float32)


@pytest.fixture(scope="module")
def bucket_trees():
    rng = np.random.default_rng(2)
    shapes = {
        "w0": (128, 256), "b0": (256,), "w1": (256, 96), "b1": (96,),
        "w2": (96, 64), "b2": (64,),
    }
    return [
        {k: rng.standard_normal(v).astype(np.float32) for k, v in shapes.items()}
        for _ in range(DEVICES)
    ]


def _annotate(benchmark, devices, payload):
    benchmark.extra_info["devices"] = devices
    benchmark.extra_info["payload_floats"] = payload


def test_ring_all_reduce_f32(benchmark, ring_inputs):
    _annotate(benchmark, DEVICES, SIZE)
    out = benchmark(ring_all_reduce, ring_inputs, "f32")
    truth = np.sum(ring_inputs, axis=0, dtype=np.float64)
    assert np.allclose(out[0], truth, rtol=1e-4, atol=1e-3)


def test_ring_all_reduce_f32_reference(benchmark, ring_inputs):
    _annotate(benchmark, DEVICES, SIZE)
    out = benchmark(_reference_ring_all_reduce, ring_inputs, "f32")
    truth = np.sum(ring_inputs, axis=0, dtype=np.float64)
    assert np.allclose(out[0], truth, rtol=1e-4, atol=1e-3)


def test_ring_all_reduce_bf16(benchmark, ring_inputs):
    _annotate(benchmark, DEVICES, SIZE)
    out = benchmark(ring_all_reduce, ring_inputs, "bf16")
    truth = np.sum(ring_inputs, axis=0, dtype=np.float64)
    assert np.allclose(out[0], truth, rtol=0.2, atol=0.5)


def test_ring_all_reduce_bf16_reference(benchmark, ring_inputs):
    _annotate(benchmark, DEVICES, SIZE)
    out = benchmark(_reference_ring_all_reduce, ring_inputs, "bf16")
    truth = np.sum(ring_inputs, axis=0, dtype=np.float64)
    assert np.allclose(out[0], truth, rtol=0.2, atol=0.5)


def test_two_phase_all_reduce(benchmark, grid_inputs):
    _annotate(benchmark, DEVICES, SIZE)
    out = benchmark(two_phase_all_reduce, grid_inputs, "f32")
    truth = np.sum([g for col in grid_inputs for g in col], axis=0,
                   dtype=np.float64)
    assert np.allclose(out[0][0], truth, rtol=1e-4, atol=1e-3)


def test_two_phase_all_reduce_reference(benchmark, grid_inputs):
    _annotate(benchmark, DEVICES, SIZE)
    out = benchmark(_reference_two_phase_all_reduce, grid_inputs, "f32")
    truth = np.sum([g for col in grid_inputs for g in col], axis=0,
                   dtype=np.float64)
    assert np.allclose(out[0][0], truth, rtol=1e-4, atol=1e-3)


def test_ring_all_reduce_f32_256dev(benchmark, big_ring_block):
    """Pod-scale ring on the device-major path: 256 devices x 64K floats."""
    _annotate(benchmark, BIG_DEVICES, SIZE)
    out = benchmark(ring_all_reduce_stacked, big_ring_block, "f32")
    truth = np.sum(big_ring_block, axis=0, dtype=np.float64)
    assert np.allclose(out.device_view(0), truth, rtol=1e-3, atol=1e-2)
    start = time.perf_counter()
    ring_all_reduce_stacked(big_ring_block, "f32")
    assert time.perf_counter() - start < 2.0


def test_ring_all_reduce_f32_1024dev(benchmark, huge_ring_block):
    """1024-device full ring, stacked path: must stay under two seconds."""
    _annotate(benchmark, HUGE_DEVICES, SIZE)
    out = benchmark(ring_all_reduce_stacked, huge_ring_block, "f32")
    truth = np.sum(huge_ring_block, axis=0, dtype=np.float64)
    assert np.allclose(out.device_view(0), truth, rtol=1e-3, atol=1e-1)
    start = time.perf_counter()
    ring_all_reduce_stacked(huge_ring_block, "f32")
    assert time.perf_counter() - start < 2.0


def test_ring_all_reduce_f32_4096dev(benchmark, max_ring_block):
    """4096-device full ring over 1 GiB of gradients, stacked path."""
    _annotate(benchmark, MAX_DEVICES, SIZE)
    out = benchmark(ring_all_reduce_stacked, max_ring_block, "f32")
    truth = np.sum(max_ring_block, axis=0, dtype=np.float64)
    assert np.allclose(out.device_view(0), truth, rtol=1e-3, atol=1e-1)
    start = time.perf_counter()
    ring_all_reduce_stacked(max_ring_block, "f32")
    assert time.perf_counter() - start < 2.0


def test_two_phase_all_reduce_1024dev(benchmark, huge_ring_block):
    """32x32 torus two-phase all-reduce on the stacked path."""
    _annotate(benchmark, HUGE_DEVICES, SIZE)
    out = benchmark(
        two_phase_all_reduce_stacked, huge_ring_block, (32, 32), "f32"
    )
    truth = np.sum(huge_ring_block, axis=0, dtype=np.float64)
    assert np.allclose(out.device_view(0), truth, rtol=1e-3, atol=1e-1)


def test_two_phase_all_reduce_4096dev(benchmark, max_ring_block):
    """64x64 torus two-phase all-reduce, the paper's full-pod grid shape."""
    _annotate(benchmark, MAX_DEVICES, SIZE)
    out = benchmark(
        two_phase_all_reduce_stacked, max_ring_block, (64, 64), "f32"
    )
    truth = np.sum(max_ring_block, axis=0, dtype=np.float64)
    assert np.allclose(out.device_view(0), truth, rtol=1e-3, atol=1e-1)
    start = time.perf_counter()
    two_phase_all_reduce_stacked(max_ring_block, (64, 64), "f32")
    assert time.perf_counter() - start < 2.0


def test_bucketed_all_reduce(benchmark, bucket_trees):
    """One fused collective for a whole parameter tree (the trainer path)."""
    bucket = GradientBucket(bucket_trees[0])
    _annotate(benchmark, DEVICES, bucket.size)
    out = benchmark(bucket.all_reduce, bucket_trees, "f32")
    truth = np.sum([t["b0"] for t in bucket_trees], axis=0, dtype=np.float64)
    assert np.allclose(out[0]["b0"], truth, rtol=1e-4, atol=1e-3)

"""Benchmark: regenerate Table 1 (end-to-end times, 7 configurations)."""

from repro.experiments import table1
from repro.experiments.table1 import PAPER_TF_MINUTES


def test_table1(benchmark):
    table = benchmark(table1.run)
    assert len(table.rows) == 7
    for row in table.rows:
        paper = PAPER_TF_MINUTES[(row[0], row[1])]
        assert abs(row[2] - paper) / paper < 0.35

"""Benchmark: regenerate Figure 10 (TPU vs V100/A100 end-to-end minutes)."""

from repro.experiments import figure10


def test_figure10(benchmark):
    table = benchmark(figure10.run)
    for row in table.rows:
        assert row[2] < row[6], f"TPU should beat V100 on {row[0]}"

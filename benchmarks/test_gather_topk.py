"""Benchmark: gather -> one-hot matmul and distributed top-k kernels (§4.5)."""

import numpy as np
import pytest

from repro.spmd.gather_exec import (
    distributed_topk,
    gather_as_onehot_matmul,
    sharded_onehot_gather,
    topk_direct,
)


@pytest.fixture(scope="module")
def roi_workload():
    rng = np.random.default_rng(0)
    table = rng.standard_normal((4096, 256)).astype(np.float32)
    ids = rng.integers(0, 4096, 1000)
    return table, ids


def test_gather_onehot_matmul(benchmark, roi_workload):
    table, ids = roi_workload
    out = benchmark(gather_as_onehot_matmul, table, ids)
    assert np.allclose(out, table[ids])


def test_sharded_onehot_gather(benchmark, roi_workload):
    table, ids = roi_workload
    shards = list(np.array_split(table, 4))
    out = benchmark(sharded_onehot_gather, shards, ids, "f32")
    assert np.allclose(out, table[ids], rtol=1e-4, atol=1e-4)


def test_distributed_topk(benchmark):
    rng = np.random.default_rng(1)
    values = rng.standard_normal(262_144)
    shards = list(np.array_split(values, 8))
    dv, di = benchmark(distributed_topk, shards, 1000)
    ev, ei = topk_direct(values, 1000)
    assert np.array_equal(di, ei)

"""Benchmark: regenerate Figure 11 (speedup over 16 chips of own type)."""

from repro.experiments import figure11


def test_figure11(benchmark):
    fig = benchmark(figure11.run)
    tpu = dict(zip(*fig.series["tpu_bert"]))
    gpu = dict(zip(*fig.series["gpu_a100_bert"]))
    assert max(tpu.values()) > max(gpu.values())

"""Benchmark: MaskRCNN comm-overhead ablation (§4.5's 30% -> 10% claim)."""

from repro.experiments import ablations


def test_maskrcnn_comm(benchmark):
    table = benchmark(ablations.maskrcnn_comm_ablation)
    v06 = next(r for r in table.rows if r[0] == "v0.6")
    v07 = next(r for r in table.rows if r[0] == "v0.7")
    assert abs(v06[5] - 30.0) < 10.0
    assert abs(v07[5] - 10.0) < 5.0

"""Benchmark: functional spatial partitioning (halo-exchange conv stack)."""

import numpy as np
import pytest

from repro.spmd.spatial_exec import conv2d_direct, spatial_conv_stack


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(0)
    x = rng.standard_normal((1, 48, 32, 4)).astype(np.float32)
    weights = [
        rng.standard_normal((3, 3, 4, 8)).astype(np.float32) * 0.2,
        rng.standard_normal((3, 3, 8, 8)).astype(np.float32) * 0.2,
    ]
    return x, weights


def test_direct_conv(benchmark, workload):
    x, weights = workload
    out = benchmark(conv2d_direct, x, weights[0])
    assert out.shape == (1, 48, 32, 8)


def test_spatial_stack_4_cores(benchmark, workload):
    x, weights = workload
    out, moved = benchmark(spatial_conv_stack, x, weights, 4)
    assert moved > 0
    assert out.shape == (1, 48, 32, 8)

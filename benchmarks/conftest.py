"""Benchmark-suite configuration.

Run with::

    pytest benchmarks/ --benchmark-only

Each benchmark regenerates one table/figure of the paper (or times a core
kernel) and asserts the headline shape, so the suite doubles as an
integration check of the full reproduction pipeline.
"""

"""Benchmark: functional parallel-training steps (DP, WUS, hybrid)."""

import numpy as np
import pytest

from repro.core.data_parallel import DataParallelTrainer
from repro.core.model_parallel import HybridParallelTrainer
from repro.core.weight_update_sharding import WeightUpdateShardedTrainer
from repro.models.mlp import MLP, synthetic_classification
from repro.optim import LAMB


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(0)
    model = MLP([32, 64, 32, 8])
    x, y = synthetic_classification(rng, 256, 32, 8)
    return model, x, y


def _step(trainer, x, y):
    return trainer.step(x, y)


def test_data_parallel_step(benchmark, workload):
    model, x, y = workload
    trainer = DataParallelTrainer(model, LAMB(0.01), dp_x=8)
    trainer.init(np.random.default_rng(0))
    loss = benchmark(_step, trainer, x, y)
    assert np.isfinite(loss)


def test_wus_step(benchmark, workload):
    model, x, y = workload
    trainer = WeightUpdateShardedTrainer(model, LAMB(0.01), num_replicas=8)
    trainer.init(np.random.default_rng(0))
    loss = benchmark(_step, trainer, x, y)
    assert np.isfinite(loss)


def test_hybrid_step(benchmark, workload):
    model, x, y = workload
    trainer = HybridParallelTrainer(model, LAMB(0.01), dp_size=4, mp_size=2)
    trainer.init(np.random.default_rng(0))
    loss = benchmark(_step, trainer, x, y)
    assert np.isfinite(loss)

"""Benchmark: functional parallel-training steps (DP, WUS, hybrid)."""

import numpy as np
import pytest

from repro.core import TrainerConfig, make_trainer
from repro.models.mlp import MLP, synthetic_classification
from repro.optim import LAMB


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(0)
    model = MLP([32, 64, 32, 8])
    x, y = synthetic_classification(rng, 256, 32, 8)
    return model, x, y


def _step(trainer, x, y):
    return trainer.step(x, y)


def _trainer(model, **overrides):
    config = TrainerConfig(model=model, optimizer=LAMB(0.01), seed=0, **overrides)
    return make_trainer(config)


def test_data_parallel_step(benchmark, workload):
    model, x, y = workload
    trainer = _trainer(model, strategy="data_parallel", mesh_shape=(8, 1))
    loss = benchmark(_step, trainer, x, y)
    assert np.isfinite(loss)


def test_wus_step(benchmark, workload):
    model, x, y = workload
    trainer = _trainer(model, strategy="wus", mesh_shape=(8, 1))
    loss = benchmark(_step, trainer, x, y)
    assert np.isfinite(loss)


def test_hybrid_step(benchmark, workload):
    model, x, y = workload
    trainer = _trainer(model, strategy="hybrid", mesh_shape=(4, 1), mp_size=2)
    loss = benchmark(_step, trainer, x, y)
    assert np.isfinite(loss)

"""Benchmark: weight-update-sharding ablation (§3.2 and §4.4 claims)."""

from repro.experiments import ablations


def test_wus_ablation(benchmark):
    table = benchmark(ablations.wus_ablation)
    bert_off = next(r for r in table.rows if r[0] == "bert" and r[2] == "off")
    assert bert_off[5] > 8.0  # LAMB update a significant step fraction
    ssd_on = next(r for r in table.rows if r[0] == "ssd" and r[2] == "on")
    assert abs(ssd_on[6] - 1.10) < 0.07  # the paper's ~10% SSD speedup


def test_allreduce_2d_ablation(benchmark):
    table = benchmark(ablations.allreduce_2d_ablation)
    for row in table.rows:
        assert row[4] > 2.0

"""Benchmark: regenerate Table 2 (TF vs JAX initialization time)."""

from repro.experiments import table2


def test_table2(benchmark):
    table = benchmark(table2.run)
    assert len(table.rows) == 4
    for row in table.rows:
        assert row[3] < row[1]  # JAX init < TF init

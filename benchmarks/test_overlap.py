"""Benchmark: the overlap engine (bucketed trainer steps + DES schedule).

Two claims, one ``--benchmark-enable`` run:

* the bucketed-overlap trainer step costs about the same wall time as the
  eager step — the overlap model is a cheap bolt-on, not a second step —
  and its arithmetic is **bit-identical** to eager at the same bucket
  count (asserted in every run, including the tier-1 ``--benchmark-disable``
  correctness pass);
* the analytic overlap sweep (DES schedule per bucket count) stays fast
  enough to embed in experiment loops.
"""

import numpy as np
import pytest

from repro.core import TrainerConfig, make_trainer
from repro.core.step_time import StepTimeModel
from repro.core.strategy import ParallelismConfig
from repro.experiments.calibration import CALIBRATIONS, spec_for
from repro.models.mlp import MLP, synthetic_classification
from repro.optim import LAMB

REPLICAS = 8
BUCKETS = 4


def _annotate(benchmark, devices, payload):
    benchmark.extra_info["devices"] = devices
    benchmark.extra_info["payload_floats"] = payload


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(0)
    model = MLP([32, 64, 32, 8])
    x, y = synthetic_classification(rng, 256, 32, 8)
    return model, x, y


def _trainer(model, *, overlap):
    return make_trainer(
        TrainerConfig(
            model=model,
            optimizer=LAMB(0.01),
            strategy="data_parallel",
            mesh_shape=(REPLICAS, 1),
            num_buckets=BUCKETS,
            overlap=overlap,
            seed=0,
        )
    )


def _param_floats(model):
    return sum(int(np.prod(s)) for s in zip(model.layer_sizes, model.layer_sizes[1:]))


def test_bucketed_step_eager(benchmark, workload):
    model, x, y = workload
    trainer = _trainer(model, overlap=False)
    loss = benchmark(trainer.step, x, y)
    assert np.isfinite(loss)
    assert trainer.last_overlap is None
    _annotate(benchmark, REPLICAS, _param_floats(model))


def test_bucketed_step_overlap(benchmark, workload):
    model, x, y = workload
    # Bit-identity first, on fresh trainers: overlap only changes the
    # modeled timeline, never the arithmetic.
    eager, overlapped = _trainer(model, overlap=False), _trainer(model, overlap=True)
    for _ in range(3):
        eager_loss, overlap_loss = eager.step(x, y), overlapped.step(x, y)
        assert float(eager_loss) == float(overlap_loss)
    for name in eager.params:
        assert np.array_equal(eager.params[name], overlapped.params[name])

    trainer = _trainer(model, overlap=True)
    loss = benchmark(trainer.step, x, y)
    assert np.isfinite(loss)
    overlap = trainer.last_overlap
    assert overlap is not None
    assert overlap.step_seconds <= overlap.serial_step_seconds + 1e-12
    _annotate(benchmark, REPLICAS, _param_floats(model))


def test_analytic_overlap_sweep(benchmark):
    spec, cal = spec_for("bert"), CALIBRATIONS["bert"]
    config = ParallelismConfig(num_chips=4096, global_batch=16384)
    model = StepTimeModel(
        spec,
        config,
        mxu_efficiency=cal.mxu_efficiency,
        step_overhead=cal.step_overhead,
        overlap=True,
    )

    def sweep():
        return [model.overlap_result(b).exposed_comm_seconds for b in (1, 2, 4, 8, 16)]

    exposed = benchmark(sweep)
    # Exposed comm strictly decreases with bucket count until latency-bound.
    assert all(a > b for a, b in zip(exposed, exposed[1:]))
    _annotate(benchmark, 4096, int(spec.gradient_bytes // 4))

"""Benchmark: multipod input-pipeline imbalance study (§3.5)."""

from repro.experiments import ablations


def test_input_pipeline(benchmark):
    table = benchmark.pedantic(
        ablations.input_pipeline_ablation, rounds=1, iterations=1
    )
    compressed = next(r for r in table.rows if r[0] == "jpeg_compressed")
    uncompressed = next(r for r in table.rows if r[0] == "uncompressed")
    assert compressed[1] > uncompressed[1]
    assert uncompressed[1] < 1.05


def test_dlrm_input(benchmark):
    table = benchmark(ablations.dlrm_input_ablation)
    assert table.rows[-1][2] == "yes"

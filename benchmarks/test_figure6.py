"""Benchmark: regenerate Figure 6 (ResNet-50 step breakdown)."""

from repro.experiments import figure6


def test_figure6(benchmark):
    fig = benchmark(figure6.run)
    frac = fig.series["allreduce_fraction_at_4096"][1][0]
    assert abs(frac - 0.22) < 0.05

"""Benchmark: regenerate Figure 7 (BERT speedup vs chips)."""

from repro.experiments import figure7


def test_figure7(benchmark):
    fig = benchmark(figure7.run)
    e2e = dict(zip(*fig.series["end_to_end"]))
    assert e2e[4096] > 80

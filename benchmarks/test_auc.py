"""Benchmark: the sort-based AUC kernel (§4.6's custom metric library).

The paper replaced a 60-second library call with a 2-second sorted
implementation on 90M samples.  Here we time our numpy equivalent on 2M
synthetic pCTR samples (the 89M extrapolation lives in the ablation table)
and the binned approximation.
"""

import numpy as np
import pytest

from repro.metrics.auc import auc_binned, auc_sorted, synthetic_pctr

N = 2_000_000


@pytest.fixture(scope="module")
def pctr():
    rng = np.random.default_rng(42)
    return synthetic_pctr(rng, N)


def test_auc_sorted(benchmark, pctr):
    scores, labels = pctr
    auc = benchmark(auc_sorted, scores, labels)
    assert abs(auc - 0.80) < 0.01


def test_auc_binned(benchmark, pctr):
    scores, labels = pctr
    auc = benchmark(auc_binned, scores, labels)
    assert abs(auc - 0.80) < 0.01


def test_auc_ablation_table(benchmark):
    from repro.experiments import ablations

    table = benchmark.pedantic(
        ablations.auc_ablation, kwargs={"n": 500_000}, rounds=1, iterations=1
    )
    naive_row = table.rows[1]
    sorted_row = table.rows[0]
    # The naive extrapolation must be catastrically larger.
    assert float(naive_row[3]) > 1000 * float(sorted_row[3])

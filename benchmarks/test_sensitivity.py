"""Benchmark: the sensitivity-analysis grid (robustness of conclusions)."""

from repro.experiments import sensitivity


def test_sensitivity(benchmark):
    table = benchmark(sensitivity.run)
    # The schedule ordering must hold in every perturbation corner.
    assert all(row[1] == "yes" for row in table.rows)

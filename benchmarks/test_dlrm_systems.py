"""Benchmark: DLRM systems kernels — sharded lookups, masking, eval loop."""

import numpy as np
import pytest

from repro.core.loop import dlrm_eval_accumulation_ablation
from repro.models.embedding import (
    ShardedEmbedding,
    interaction_gather,
    interaction_masked,
)


@pytest.fixture(scope="module")
def table():
    rng = np.random.default_rng(0)
    return rng.standard_normal((200_000, 64)).astype(np.float32)


@pytest.fixture(scope="module")
def ids():
    return np.random.default_rng(1).integers(0, 200_000, 8192)


def test_sharded_embedding_lookup(benchmark, table, ids):
    sharded = ShardedEmbedding(table, 8)
    out = benchmark(sharded.lookup, ids)
    assert np.allclose(out, table[ids])


def test_interaction_masked(benchmark):
    rng = np.random.default_rng(2)
    features = rng.standard_normal((512, 27, 16)).astype(np.float32)
    out = benchmark(interaction_masked, features)
    assert out.shape == (512, 27 * 27)


def test_interaction_gather(benchmark):
    rng = np.random.default_rng(2)
    features = rng.standard_normal((512, 27, 16)).astype(np.float32)
    out = benchmark(interaction_gather, features)
    assert out.shape == (512, 27 * 26 // 2)


def test_eval_accumulation_loop(benchmark):
    naive, optimized = benchmark(dlrm_eval_accumulation_ablation)
    assert optimized.total_seconds < naive.total_seconds

"""Benchmark: regenerate Figure 9 (model-parallel speedups via SPMD)."""

from repro.experiments import figure9


def test_figure9(benchmark):
    fig = benchmark(figure9.run)
    transformer = dict(zip(*fig.series["transformer_v0.7"]))
    assert abs(transformer[4] - 2.3) < 0.6
    ssd = dict(zip(*fig.series["ssd_v0.7"]))
    maskrcnn = dict(zip(*fig.series["maskrcnn_v0.7"]))
    assert maskrcnn[8] > ssd[8] > 2.0

"""Benchmark: regenerate Figure 8 (BERT step breakdown)."""

from repro.experiments import figure8


def test_figure8(benchmark):
    fig = benchmark(figure8.run)
    frac = fig.series["allreduce_fraction_at_4096"][1][0]
    assert abs(frac - 0.273) < 0.06

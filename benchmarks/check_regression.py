"""Fail CI when a collective-kernel benchmark regresses past 3x committed.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py \
        [--baseline BENCH_collectives.json] [--threshold 3.0] \
        [--drift-tolerance 1e-6] [--drift-only]

Re-runs the committed benchmark cases with pytest-benchmark enabled and
compares each fresh median against the median recorded in
``BENCH_collectives.json``.  CI machines are slower and noisier than the
workstation that wrote the committed record, so this is a *smoke* gate:
only a regression beyond ``--threshold`` (default 3x) fails, which is far
outside machine-class variance but well inside the 10-100x cliffs that an
accidental fall off the device-major fast path produces.

Only cases at <= 256 devices run here: the 1024/4096-device cases need
GiB-scale fixtures and are recorded by ``run_benchmarks.py`` on the
benchmark machine instead.  Reference twins (``*_reference``) are also
skipped — they pin the before/after table, not the product kernels.

The script also runs the **model-vs-measured drift gate**
(:mod:`repro.telemetry.drift`): the discrete-event collective schedules
and the analytic alpha-beta cost model must agree per phase within
``--drift-tolerance`` (default 1e-6 relative — they agree to ~1e-15
today, so any real divergence trips instantly).  Unlike the wall-clock
gate this one is machine-independent.  ``--drift-only`` skips the
benchmarks and runs just the drift check (the fast CI step).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Names never gated: reference twins are the intentionally-slow oracle.
SKIP_SUFFIX = "_reference"
MAX_DEVICES = 256


def committed_cases(baseline: Path) -> dict[str, int]:
    record = json.loads(baseline.read_text())
    gated = {}
    for case in record["cases"]:
        name = case["name"]
        if name.endswith(SKIP_SUFFIX):
            continue
        devices = case.get("devices")
        if devices is not None and devices > MAX_DEVICES:
            continue
        gated[name] = case["median_ns"]
    return gated


def run_cases(names: list[str], json_path: Path) -> None:
    # -k matches substrings, so gated names like test_ring_all_reduce_f32
    # would also select their _1024dev/_4096dev big siblings; exclude the
    # pod-scale cases explicitly (GiB fixtures, not gated here anyway).
    expr = (
        "(" + " or ".join(names) + ") and not 1024dev and not 4096dev"
    )
    cmd = [
        sys.executable, "-m", "pytest",
        str(REPO / "benchmarks"),
        "-q",
        "-k", expr,
        "--benchmark-enable",
        "--benchmark-only",
        f"--benchmark-json={json_path}",
    ]
    env = {**os.environ, "PYTHONPATH": str(REPO / "src")}
    result = subprocess.run(cmd, cwd=REPO, env=env)
    if result.returncode != 0:
        raise SystemExit(result.returncode)


def check_model_drift(tolerance: float) -> bool:
    """Run the model-vs-measured drift gate; True when within tolerance."""
    sys.path.insert(0, str(REPO / "src"))
    from repro.telemetry import drift

    entries = drift.drift_report()
    print("model-vs-measured drift gate:")
    print(drift.format_report(entries, tolerance=tolerance))
    ok, bad = drift.check_drift(entries, tolerance=tolerance)
    if not ok:
        print("\nmodel drift gate FAILED:", file=sys.stderr)
        for e in bad:
            print(
                f"  {e.case}/{e.phase}: measured {e.measured_s:.6e}s vs "
                f"predicted {e.predicted_s:.6e}s ({e.drift_rel:.2e} rel)",
                file=sys.stderr,
            )
    return ok


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        type=Path,
        default=REPO / "BENCH_collectives.json",
        help="committed benchmark record to gate against",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=3.0,
        help="fail when fresh median exceeds committed median by this factor",
    )
    parser.add_argument(
        "--drift-tolerance",
        type=float,
        default=1e-6,
        help="max relative drift between the DES schedules and the cost model",
    )
    parser.add_argument(
        "--drift-only",
        action="store_true",
        help="run only the model-vs-measured drift gate (no benchmarks)",
    )
    args = parser.parse_args()

    if args.drift_only:
        if not check_model_drift(args.drift_tolerance):
            raise SystemExit(1)
        return

    gated = committed_cases(args.baseline)
    if not gated:
        raise SystemExit("no gateable cases in baseline record")

    with tempfile.TemporaryDirectory() as tmp:
        raw_path = Path(tmp) / "raw.json"
        run_cases(sorted(gated), raw_path)
        raw = json.loads(raw_path.read_text())

    fresh = {
        b["name"]: b["stats"]["median"] * 1e9 for b in raw["benchmarks"]
    }
    failures = []
    for name, committed_ns in sorted(gated.items()):
        got_ns = fresh.get(name)
        if got_ns is None:
            failures.append(f"{name}: case missing from fresh run")
            continue
        ratio = got_ns / committed_ns
        status = "FAIL" if ratio > args.threshold else "ok"
        print(
            f"  {status:4s} {name:45s} committed {committed_ns / 1e6:9.3f} ms"
            f"  fresh {got_ns / 1e6:9.3f} ms  ({ratio:.2f}x)"
        )
        if ratio > args.threshold:
            failures.append(
                f"{name}: {ratio:.2f}x over committed median "
                f"(threshold {args.threshold}x)"
            )
    if failures:
        print("\nbenchmark regression gate FAILED:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        raise SystemExit(1)
    print(f"\nall {len(gated)} gated cases within {args.threshold}x\n")

    if not check_model_drift(args.drift_tolerance):
        raise SystemExit(1)


if __name__ == "__main__":
    main()

"""Benchmark: regenerate Figure 5 (ResNet-50 speedup vs chips)."""

from repro.experiments import figure5


def test_figure5(benchmark):
    fig = benchmark(figure5.run)
    e2e = dict(zip(*fig.series["end_to_end"]))
    thr = dict(zip(*fig.series["throughput"]))
    assert thr[4096] > e2e[4096] > 30

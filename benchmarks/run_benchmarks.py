"""Run the collective-kernel benchmarks and write ``BENCH_collectives.json``.

Usage::

    PYTHONPATH=src python benchmarks/run_benchmarks.py [--out BENCH_collectives.json]

Invokes the pytest-benchmark suites in ``benchmarks/test_collectives.py``
and ``benchmarks/test_overlap.py`` with benchmarking *enabled* (the tier-1
test flow runs the same files with ``--benchmark-disable``, where each
case executes once as a correctness check), then distills the raw
pytest-benchmark report into a compact, diff-friendly record: one entry
per case with the median in nanoseconds and the device/payload
annotations.  Vectorized kernels and their ``_reference_*`` twins appear
side by side, so the committed file is the before/after table for the
vectorization work; the overlap cases pin the cost of the bucketed
trainer step and the DES overlap schedule.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: pytest-benchmark medians of the pre-vectorization kernels (the repo seed,
#: commit 98a6bc1), measured by this same harness on the same machine class.
#: Kept so the committed record always carries its "before" column even
#: after the loop-based implementations only survive as ``_reference_*``.
SEED_MEDIANS_NS = {
    "test_ring_all_reduce_f32": 4_320_300,
    "test_ring_all_reduce_bf16": 13_540_800,
    "test_two_phase_all_reduce": 2_119_800,
}

#: Medians committed by the previous (pre-device-major) PR, same machine
#: class.  These kernels iterated devices in Python; the stacked rewrite
#: replaces that with O(ring_steps) whole-block numpy ops, and the
#: ``speedup_vs_prior`` column in the record tracks the win per case.
PRIOR_MEDIANS_NS = {
    "test_ring_all_reduce_f32": 536_704,
    "test_ring_all_reduce_bf16": 2_976_313,
    "test_two_phase_all_reduce": 766_758,
    "test_ring_all_reduce_f32_256dev": 38_139_905,
    "test_bucketed_all_reduce": 4_609_353,
}


def run_suite(json_path: Path) -> None:
    cmd = [
        sys.executable, "-m", "pytest",
        str(REPO / "benchmarks" / "test_collectives.py"),
        str(REPO / "benchmarks" / "test_overlap.py"),
        "-q",
        "--benchmark-enable",
        "--benchmark-only",
        f"--benchmark-json={json_path}",
    ]
    env = {"PYTHONPATH": str(REPO / "src")}
    import os

    env = {**os.environ, **env}
    result = subprocess.run(cmd, cwd=REPO, env=env)
    if result.returncode != 0:
        raise SystemExit(result.returncode)


def distill(raw: dict) -> dict:
    cases = []
    for bench in raw["benchmarks"]:
        extra = bench.get("extra_info", {})
        cases.append(
            {
                "name": bench["name"],
                "median_ns": round(bench["stats"]["median"] * 1e9),
                "mean_ns": round(bench["stats"]["mean"] * 1e9),
                "rounds": bench["stats"]["rounds"],
                "devices": extra.get("devices"),
                "payload_floats": extra.get("payload_floats"),
            }
        )
    cases.sort(key=lambda c: c["name"])
    speedups = {}
    seed_speedups = {}
    prior_speedups = {}
    by_name = {c["name"]: c for c in cases}
    for name, case in by_name.items():
        ref = by_name.get(name + "_reference")
        if ref is not None:
            speedups[name] = round(ref["median_ns"] / case["median_ns"], 2)
        seed = SEED_MEDIANS_NS.get(name)
        if seed is not None:
            seed_speedups[name] = round(seed / case["median_ns"], 2)
        prior = PRIOR_MEDIANS_NS.get(name)
        if prior is not None:
            prior_speedups[name] = round(prior / case["median_ns"], 2)
    return {
        "machine": raw.get("machine_info", {}).get("machine"),
        "python": raw.get("machine_info", {}).get("python_version"),
        "cases": cases,
        "seed_medians_ns": SEED_MEDIANS_NS,
        "prior_medians_ns": PRIOR_MEDIANS_NS,
        "speedup_vs_reference": speedups,
        "speedup_vs_seed": seed_speedups,
        "speedup_vs_prior": prior_speedups,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO / "BENCH_collectives.json",
        help="where to write the distilled benchmark record",
    )
    args = parser.parse_args()
    with tempfile.TemporaryDirectory() as tmp:
        raw_path = Path(tmp) / "raw.json"
        run_suite(raw_path)
        raw = json.loads(raw_path.read_text())
    record = distill(raw)
    args.out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {args.out}")
    for case in record["cases"]:
        print(
            f"  {case['name']:45s} median {case['median_ns'] / 1e6:9.3f} ms"
            f"  ({case['devices']} dev, {case['payload_floats']} floats)"
        )
    for name, speedup in sorted(record["speedup_vs_reference"].items()):
        print(f"  speedup {name}: {speedup}x vs reference")
    for name, speedup in sorted(record["speedup_vs_seed"].items()):
        print(f"  speedup {name}: {speedup}x vs seed")
    for name, speedup in sorted(record["speedup_vs_prior"].items()):
        print(f"  speedup {name}: {speedup}x vs prior PR")


if __name__ == "__main__":
    main()

"""Benchmark: BERT shuffle-quality study (§3.5)."""

from repro.experiments import ablations


def test_shuffle_quality(benchmark):
    table = benchmark.pedantic(
        ablations.shuffle_quality_ablation, rounds=1, iterations=1
    )
    # Large buffers reduce run-to-run batch bias under either policy.
    rows = {(r[0], r[1]): r for r in table.rows}
    assert (
        rows[("shuffle_before_repeat", 1024)][3]
        < rows[("shuffle_before_repeat", 64)][3]
    )
